package serve

import (
	"bytes"
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rfidtrack/internal/dist"
	"rfidtrack/internal/model"
	"rfidtrack/internal/rfinfer"
	"rfidtrack/internal/sim"
	"rfidtrack/internal/stream"
)

// peerHarness is one live cluster of rfidtrackd runtimes on loopback
// sockets. The HTTP front door of each peer forwards to a swappable
// handler, so a peer can be killed and restarted without changing its URL
// — the other peers' retrying senders reconnect to the same address.
type peerHarness struct {
	urls     []string
	owner    []int
	srvs     []*Server
	handlers []atomic.Pointer[http.Handler]
	https    []*http.Server
}

// startPeerHarness boots one Server per peer over w with identical
// configs (mutated per peer by cfgMut, which must at least set DataDir
// when durability is wanted).
func startPeerHarness(t *testing.T, w *sim.World, peers int, cfgMut func(p int, cfg *Config)) *peerHarness {
	t.Helper()
	h := &peerHarness{
		owner:    dist.DefaultSiteMap(len(w.Sites), peers),
		handlers: make([]atomic.Pointer[http.Handler], peers),
		srvs:     make([]*Server, peers),
		https:    make([]*http.Server, peers),
	}
	lns := make([]net.Listener, peers)
	for p := 0; p < peers; p++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[p] = ln
		h.urls = append(h.urls, "http://"+ln.Addr().String())
	}
	for p := 0; p < peers; p++ {
		h.startPeer(t, w, p, cfgMut)
		p := p
		h.https[p] = &http.Server{Handler: http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if hd := h.handlers[p].Load(); hd != nil {
				(*hd).ServeHTTP(rw, r)
				return
			}
			writeJSON(rw, http.StatusServiceUnavailable, map[string]string{"error": "peer down"})
		})}
		go h.https[p].Serve(lns[p])
		t.Cleanup(func() { h.https[p].Close() })
	}
	return h
}

// startPeer builds (or rebuilds, after a kill) peer p's Server and swaps
// it into the front door.
func (h *peerHarness) startPeer(t *testing.T, w *sim.World, p int, cfgMut func(p int, cfg *Config)) {
	t.Helper()
	cfg := Config{
		Interval: 300,
		Horizon:  w.Epochs,
		Peers:    h.urls,
		Self:     p,
	}
	if cfgMut != nil {
		cfgMut(p, &cfg)
	}
	c := dist.NewCluster(w, peerTestStrategy, rfinfer.DefaultConfig())
	srv, err := New(c, cfg)
	if err != nil {
		t.Fatalf("peer %d: %v", p, err)
	}
	h.srvs[p] = srv
	hd := srv.Handler()
	h.handlers[p].Store(&hd)
}

// kill crash-stops peer p and takes its front door down: in-flight sends
// from other peers see connection-level 503s until the restart.
func (h *peerHarness) kill(t *testing.T, p int) {
	t.Helper()
	h.handlers[p].Store(nil)
	if err := h.srvs[p].Abort(); err != nil {
		t.Fatalf("abort peer %d: %v", p, err)
	}
}

// shutdownAll drains every peer concurrently — required, since one peer's
// final checkpoints can block receiving migrations another peer only
// sends during its own drain.
func (h *peerHarness) shutdownAll(t *testing.T) {
	t.Helper()
	errs := make([]error, len(h.srvs))
	var wg sync.WaitGroup
	for p, s := range h.srvs {
		wg.Add(1)
		go func(p int, s *Server) {
			defer wg.Done()
			errs[p] = s.Shutdown(context.Background())
		}(p, s)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("shutdown peer %d: %v", p, err)
		}
	}
}

// peerTestStrategy is mutated per subtest before startPeerHarness; a
// plain variable keeps the harness signature small.
var peerTestStrategy dist.Strategy

// clusterAlerts unions every peer's alert log (each site's alerts live
// only on its owning peer).
func clusterAlerts(t *testing.T, h *peerHarness) []Alert {
	t.Helper()
	var all []Alert
	for p := range h.urls {
		alerts, err := (&Client{BaseURL: h.urls[p]}).Alerts(0, 0)
		if err != nil {
			t.Fatalf("peer %d alerts: %v", p, err)
		}
		all = append(all, alerts...)
	}
	return all
}

// TestClusteredMatchesSequential is the networked twin of
// TestServerMatchesSequential and dist's TestPartitionedFeedDeterminism:
// a world streamed through two rfidtrackd runtimes on real sockets —
// sites split between them, migrations crossing as RFM1 frames over
// /peer/migrate — must merge to a Result (and alert sets) bit-identical
// to the single-cluster sequential reference, for every migration
// strategy.
func TestClusteredMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	w := testWorld(t)
	const interval = model.Epoch(300)
	for _, tc := range []struct {
		name      string
		strategy  dist.Strategy
		withQuery bool
	}{
		{"none", dist.MigrateNone, false},
		{"readings", dist.MigrateReadings, false},
		{"weights+query", dist.MigrateWeights, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ref := dist.NewCluster(w, tc.strategy, rfinfer.DefaultConfig())
			if tc.withQuery {
				ref.Query = exposureQuery(w, interval)
			}
			want, err := ref.ReplaySequential(interval)
			if err != nil {
				t.Fatal(err)
			}
			var wantAlerts []map[model.TagID]bool
			if tc.withQuery {
				wantAlerts = make([]map[model.TagID]bool, len(w.Sites))
				for s := range w.Sites {
					wantAlerts[s] = ref.SiteQuery(s).AlertedTags()
				}
			}

			peerTestStrategy = tc.strategy
			h := startPeerHarness(t, w, 2, func(p int, cfg *Config) {
				if tc.withQuery {
					cfg.Query = exposureQuery(w, interval)
				}
			})
			mc := NewMultiClient(h.urls, h.owner)
			events := WorldEvents(w, ref.Departures())
			for i := 0; i < len(events); i += 256 {
				end := min(i+256, len(events))
				if err := mc.Ingest(events[i:end]); err != nil {
					t.Fatal(err)
				}
			}
			h.shutdownAll(t)

			got, err := mc.MergedResult()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("merged clustered Result diverged from sequential reference\n got: %+v\nwant: %+v", got, want)
			}
			if tc.withQuery {
				gotAlerts := alertTagSets(len(w.Sites), clusterAlerts(t, h))
				if !reflect.DeepEqual(gotAlerts, wantAlerts) {
					t.Errorf("clustered alert sets diverged\n got: %v\nwant: %v", gotAlerts, wantAlerts)
				}
			}

			// The wire carries at least the encoded engine state that
			// crossed peers: socket bytes (frames + HTTP framing) must
			// dominate the cross-peer link bytes the Result accounts.
			crossBytes := 0
			for _, lc := range want.Links {
				if h.owner[lc.From] != h.owner[lc.To] {
					crossBytes += lc.Bytes
				}
			}
			var sockOut, migsSent int64
			for p, s := range h.srvs {
				st := s.Stats()
				if st.Peers == nil {
					t.Fatalf("peer %d reports no PeerStats", p)
				}
				sockOut += st.Peers.SocketBytesSent
				migsSent += st.Peers.MigrationsSent
			}
			if crossBytes > 0 && sockOut < int64(crossBytes) {
				t.Errorf("socket bytes sent %d < cross-peer link bytes %d", sockOut, crossBytes)
			}
			if crossBytes > 0 && migsSent == 0 {
				t.Error("cross-peer links accounted but no migrations sent over the wire")
			}
		})
	}
}

// TestClusteredRecoverKillOne crash-stops one peer of a durable cluster
// mid-stream and restarts it over the same data directory. The restarted
// peer recovers from its snapshot + WAL (including the fsynced-before-ACK
// migration payloads), the surviving peer's retrying sender reconnects,
// and the drained cluster must still merge bit-identically to the
// uninterrupted sequential reference.
func TestClusteredRecoverKillOne(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	w := testWorld(t)
	const interval = model.Epoch(300)
	ref := dist.NewCluster(w, dist.MigrateWeights, rfinfer.DefaultConfig())
	ref.Query = exposureQuery(w, interval)
	want, err := ref.ReplaySequential(interval)
	if err != nil {
		t.Fatal(err)
	}
	wantAlerts := make([]map[model.TagID]bool, len(w.Sites))
	for s := range w.Sites {
		wantAlerts[s] = ref.SiteQuery(s).AlertedTags()
	}

	peerTestStrategy = dist.MigrateWeights
	dirs := []string{t.TempDir(), t.TempDir()}
	cfgMut := func(p int, cfg *Config) {
		cfg.Query = exposureQuery(w, interval)
		cfg.DataDir = dirs[p]
		cfg.SnapshotEvery = 1
		cfg.PeerRetryWindow = 30 * time.Second
	}
	h := startPeerHarness(t, w, 2, cfgMut)
	mc := NewMultiClient(h.urls, h.owner)
	events := WorldEvents(w, ref.Departures())

	cut := 0
	for cut < len(events) && events[cut].Time() < w.Epochs/2 {
		cut++
	}
	for i := 0; i < cut; i += 256 {
		end := min(i+256, cut)
		if err := mc.Ingest(events[i:end]); err != nil {
			t.Fatal(err)
		}
	}

	// Crash peer 1 with buffered intervals, unconsumed inbox entries and
	// no graceful anything, then restart it over the same directory.
	h.kill(t, 1)
	h.startPeer(t, w, 1, cfgMut)

	for i := cut; i < len(events); i += 256 {
		end := min(i+256, len(events))
		if err := mc.Ingest(events[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	h.shutdownAll(t)

	got, err := mc.MergedResult()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("recovered cluster's merged Result diverged from reference\n got: %+v\nwant: %+v", got, want)
	}
	gotAlerts := alertTagSets(len(w.Sites), clusterAlerts(t, h))
	if !reflect.DeepEqual(gotAlerts, wantAlerts) {
		t.Errorf("recovered cluster's alert sets diverged\n got: %v\nwant: %v", gotAlerts, wantAlerts)
	}
}

// TestClusteredONS pins the network naming service: peer 0 answers
// /ons from its authoritative mirror, non-owner peers resolve through the
// invalidating cache, and departures invalidate cached entries.
func TestClusteredONS(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Warehouses = 2
	cfg.PathLength = 1
	cfg.Epochs = 900
	w, err := sim.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	peerTestStrategy = dist.MigrateNone
	h := startPeerHarness(t, w, 2, nil)
	defer h.shutdownAll(t)

	var item model.TagID = -1
	for i := range w.Sites[0].Tags {
		if w.Sites[0].Tags[i].Kind == model.KindItem {
			item = w.Sites[0].Tags[i].ID
			break
		}
	}
	if item < 0 {
		t.Fatal("world has no item tags")
	}
	// The HTTP endpoint answers on any peer.
	for p := range h.urls {
		site, err := (&Client{BaseURL: h.urls[p]}).ONSLookup(item)
		if err != nil {
			t.Fatalf("peer %d ONSLookup: %v", p, err)
		}
		if h.srvs[0].cluster.ONSLookup(item) != site {
			t.Errorf("peer %d resolves tag %d to site %d, authority says %d",
				p, item, site, h.srvs[0].cluster.ONSLookup(item))
		}
	}
	// Peer 1's server-side lookup goes through the cache: one miss, then
	// hits.
	if _, err := h.srvs[1].ONSLookup(item); err != nil {
		t.Fatal(err)
	}
	if _, err := h.srvs[1].ONSLookup(item); err != nil {
		t.Fatal(err)
	}
	st := h.srvs[1].Stats()
	if st.Peers == nil || st.Peers.ONSCache == nil {
		t.Fatal("peer 1 reports no ONS cache stats")
	}
	if st.Peers.ONSCache.Misses < 1 || st.Peers.ONSCache.Hits < 1 {
		t.Errorf("cache stats = %+v, want at least one miss and one hit", st.Peers.ONSCache)
	}
	// A departure for the item, fanned out through the normal ingest path,
	// invalidates the cached entry on the non-owner peer.
	mc := NewMultiClient(h.urls, h.owner)
	if err := mc.Ingest([]Event{Depart(dist.Departure{Object: item, From: 0, To: 1, At: 10})}); err != nil {
		t.Fatal(err)
	}
	if got := h.srvs[1].Stats().Peers.ONSCache.Invalidations; got != 1 {
		t.Errorf("invalidations = %d after departure, want 1", got)
	}
	// Errors from the client surface typed statuses: unknown tag is 404.
	if _, err := (&Client{BaseURL: h.urls[0]}).ONSLookup(model.TagID(w.NumTags())); !isStatus(err, http.StatusNotFound) {
		t.Errorf("unknown-tag lookup = %v, want 404 HTTPError", err)
	}
}

// isStatus reports whether err is an *HTTPError with the given status.
func isStatus(err error, status int) bool {
	var he *HTTPError
	return errors.As(err, &he) && he.Status == status
}

// TestPeerMigrateValidation pins the /peer/migrate guards: wrong
// Content-Type is 415, torn frames are 400 and counted, a frame for a
// non-owned destination is 400, and an un-clustered daemon refuses the
// route entirely.
func TestPeerMigrateValidation(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Warehouses = 2
	cfg.PathLength = 1
	cfg.Epochs = 900
	w, err := sim.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	peerTestStrategy = dist.MigrateWeights
	h := startPeerHarness(t, w, 2, nil)
	defer h.shutdownAll(t)
	post := func(url, ct string, body []byte) *HTTPError {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, url+"/peer/migrate", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", ct)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if err := checkStatus(resp, nil); err != nil {
			he, ok := err.(*HTTPError)
			if !ok {
				t.Fatalf("non-HTTP error: %v", err)
			}
			return he
		}
		return nil
	}
	if he := post(h.urls[0], "application/json", nil); he == nil || he.Status != http.StatusUnsupportedMediaType {
		t.Errorf("wrong Content-Type: %+v, want 415", he)
	}
	if he := post(h.urls[0], "application/octet-stream", []byte("RFM?garbage")); he == nil || he.Status != http.StatusBadRequest {
		t.Errorf("torn frame: %+v, want 400", he)
	}
	// A frame routed to the wrong peer: site 1 is owned by peer 1, so
	// peer 0 must refuse it permanently (a retrying sender would spin).
	frame := stream.AppendMigrationFrame(nil, 1, 0, 1, 10, []byte("opaque payload"))
	if he := post(h.urls[0], "application/octet-stream", frame); he == nil || he.Status != http.StatusBadRequest {
		t.Errorf("wrong-owner frame: %+v, want 400", he)
	}
	// The rightful owner accepts the same frame.
	if he := post(h.urls[1], "application/octet-stream", frame); he != nil {
		t.Errorf("rightful owner refused the frame: %+v", he)
	}
	// A duplicate is ACKed (idempotent receipt), not an error.
	if he := post(h.urls[1], "application/octet-stream", frame); he != nil {
		t.Errorf("duplicate frame refused: %+v", he)
	}
	st := h.srvs[1].Stats()
	if st.Peers.MigrationsReceived != 1 {
		t.Errorf("received %d migrations after duplicate post, want 1 (first copy wins)", st.Peers.MigrationsReceived)
	}
	if st.Peers.InboxDepth != 1 {
		t.Errorf("inbox depth %d, want 1", st.Peers.InboxDepth)
	}

	// An un-clustered daemon refuses the peer route.
	solo, err := New(dist.NewCluster(w, dist.MigrateWeights, rfinfer.DefaultConfig()), Config{Interval: 300, Horizon: w.Epochs})
	if err != nil {
		t.Fatal(err)
	}
	defer solo.Shutdown(context.Background())
	soloHTTP := httptest.NewServer(solo.Handler())
	defer soloHTTP.Close()
	if he := post(soloHTTP.URL, "application/octet-stream", frame); he == nil || he.Status != http.StatusNotFound {
		t.Errorf("un-clustered /peer/migrate: %+v, want 404", he)
	}
	if _, err := (&Client{BaseURL: soloHTTP.URL}).ONSLookup(0); err != nil {
		t.Errorf("un-clustered /ons should still answer from the local mirror: %v", err)
	}
}

package serve

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"rfidtrack/internal/dist"
)

// TestClientTypedStatuses pins the satellite contract of the client sweep:
// every Client method surfaces a non-2xx daemon response as a typed
// *HTTPError carrying the status, method and path — never a stringly
// error the caller would have to parse to gate retries on.
func TestClientTypedStatuses(t *testing.T) {
	const status = http.StatusTeapot
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, status, map[string]string{"error": "nope"})
	}))
	defer ts.Close()
	c := &Client{BaseURL: ts.URL}

	calls := []struct {
		name, method, path string
		call               func() error
	}{
		{"Ingest", "POST", "/ingest", func() error { _, err := c.Ingest([]Event{Reading(0, 1, 0, 1)}); return err }},
		{"IngestBatch", "POST", "/ingest/batch", func() error {
			_, err := c.IngestBatch(0, []dist.Reading{{T: 1, ID: 0, Mask: 1}})
			return err
		}},
		{"IngestBin", "POST", "/ingest/bin", func() error {
			_, err := c.IngestBin(0, []dist.Reading{{T: 1, ID: 0, Mask: 1}})
			return err
		}},
		{"IngestBinAll", "POST", "/ingest/bin", func() error {
			_, err := c.IngestBinAll([][]dist.Reading{{{T: 1, ID: 0, Mask: 1}}})
			return err
		}},
		{"Drain", "POST", "/drain", func() error { _, err := c.Drain(100); return err }},
		{"Stats", "GET", "/stats", func() error { _, err := c.Stats(); return err }},
		{"Result", "GET", "/result", func() error { _, err := c.Result(); return err }},
		{"SnapshotNow", "POST", "/snapshot", func() error { _, err := c.SnapshotNow(); return err }},
		{"Alerts", "GET", "/alerts", func() error { _, err := c.Alerts(0, 0); return err }},
		{"ONSLookup", "GET", "/ons", func() error { _, err := c.ONSLookup(0); return err }},
	}
	for _, tc := range calls {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.call()
			var he *HTTPError
			if !errors.As(err, &he) {
				t.Fatalf("%s returned %T (%v), want *HTTPError", tc.name, err, err)
			}
			if he.Status != status {
				t.Errorf("Status = %d, want %d", he.Status, status)
			}
			if he.Method != tc.method || he.Path != tc.path {
				t.Errorf("refusal identifies %s %s, want %s %s", he.Method, he.Path, tc.method, tc.path)
			}
			if he.Body == "" {
				t.Error("refusal carries no body")
			}
		})
	}
}

// TestRetryableGating is the 400-vs-503 table: retry loops (the rfidsim
// load generator's postRetry, the peer migration sender) must re-send on
// transport failures and 5xx — the daemon-restarting and daemon-draining
// signatures — and fail fast on 4xx, which would fail identically forever.
func TestRetryableGating(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"400 bad request", &HTTPError{Status: http.StatusBadRequest}, false},
		{"404 not found", &HTTPError{Status: http.StatusNotFound}, false},
		{"415 wrong content type", &HTTPError{Status: http.StatusUnsupportedMediaType}, false},
		{"500 internal", &HTTPError{Status: http.StatusInternalServerError}, true},
		{"502 bad gateway", &HTTPError{Status: http.StatusBadGateway}, true},
		{"503 draining", &HTTPError{Status: http.StatusServiceUnavailable}, true},
		{"wrapped 400", fmt.Errorf("peer 1 ingest: %w", &HTTPError{Status: http.StatusBadRequest}), false},
		{"wrapped 503", fmt.Errorf("peer 1 ingest: %w", &HTTPError{Status: http.StatusServiceUnavailable}), true},
		{"transport failure", errors.New("connection refused"), true},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

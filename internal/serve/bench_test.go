package serve

import (
	"context"
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rfidtrack/internal/dist"
	"rfidtrack/internal/model"
	"rfidtrack/internal/rfinfer"
	"rfidtrack/internal/sim"
	"rfidtrack/internal/stream"
	"rfidtrack/internal/wal"
)

// benchWorld is the 4-site deployment the serve benchmarks run against.
func benchWorld(b *testing.B) *sim.World {
	b.Helper()
	cfg := sim.DefaultConfig()
	cfg.Warehouses = 4
	cfg.PathLength = 2
	cfg.Epochs = 1200
	cfg.ItemsPerCase = 3
	w, err := sim.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkIngest measures sustained ingestion into a 4-site cluster:
// validation and interval-bucketing on the producer goroutine, plus the
// periodic checkpoints that drain the buckets — the steady state of a
// deployed daemon, with the readings of each simulated day arriving as
// fast as the server accepts them. One checkpoint runs per world cycle,
// so history truncation keeps memory flat at any b.N; a deep QueueSize
// lets ingestion run ahead while a checkpoint is in flight (the pipelined
// overlap a throughput-tuned deployment would configure). The acceptance
// floor is 860k readings/s — 2x the pre-sharding runtime.
func BenchmarkIngest(b *testing.B) {
	w := benchWorld(b)
	events := WorldEvents(w, nil)
	c := dist.NewCluster(w, dist.MigrateNone, rfinfer.DefaultConfig())
	srv, err := New(c, Config{Interval: w.Epochs, QueueSize: 1 << 17})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	const batchSize = 512
	batch := make([]Event, 0, batchSize)
	var offset model.Epoch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := events[i%len(events)]
		if i%len(events) == 0 && i > 0 {
			offset += w.Epochs // keep stream time monotonic across cycles
		}
		ev.T += offset
		batch = append(batch, ev)
		if len(batch) == batchSize {
			if err := srv.Ingest(batch); err != nil {
				b.Fatal(err)
			}
			batch = batch[:0] // Ingest does not retain the slice
		}
	}
	if len(batch) > 0 {
		if err := srv.Ingest(batch); err != nil {
			b.Fatal(err)
		}
	}
	if err := srv.Drain(1); err != nil { // settle due checkpoints before stopping the clock
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "readings/s")
	if st := srv.Stats(); st.Invalid != 0 {
		b.Fatalf("bench stream counted %d invalid (last: %s)", st.Invalid, st.LastInvalid)
	}
}

// BenchmarkIngestBatch measures the site-addressed fast path: one lock
// acquisition, one validation loop, zero allocations per batch. Every
// probe epoch stays inside the first (never-closing) interval, so no
// checkpoint ever runs and the number is the pure front-end cost — the
// bound on what one sharded ingest stripe can sustain.
func BenchmarkIngestBatch(b *testing.B) {
	w := benchWorld(b)
	c := dist.NewCluster(w, dist.MigrateNone, rfinfer.DefaultConfig())
	srv, err := New(c, Config{Interval: w.Epochs, QueueSize: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	const batchSize = 512
	item := w.Sites[0].Items()[0]
	batch := make([]dist.Reading, batchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batchSize {
		for j := range batch {
			batch[j] = dist.Reading{T: model.Epoch((i + j) % int(w.Epochs)), ID: item, Mask: 1}
		}
		if err := srv.IngestBatch(0, batch); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "readings/s")
}

// BenchmarkIngestBin measures the binary wire fast path: pre-encoded
// batch frames pushed through IngestFrame — structural validation, CRC,
// then the zero-copy section path that reinterprets record bytes as
// readings in place and bulk-appends them bucket-run by bucket-run under
// one stripe lock per section. Frames are built once outside the loop, so
// the number is the pure server-side cost per reading and the loop must
// stay zero-alloc. Every epoch stays inside the first never-closing
// interval so no checkpoint runs; a fresh server takes over every 2^20
// readings (outside the timer) so the number reflects the steady state of
// a stripe that is drained every Δ-interval, not the ever-worsening growth
// of one bucket fed forever. The acceptance floor is 10M readings/s.
func BenchmarkIngestBin(b *testing.B) {
	w := benchWorld(b)
	const batchSize = 512
	const numFrames = 8
	const perServer = 1 << 20
	item := w.Sites[0].Items()[0]
	frames := make([][]byte, numFrames)
	for f := range frames {
		var fb stream.FrameBuilder
		fb.Reset()
		fb.BeginSection(0)
		for j := 0; j < batchSize; j++ {
			fb.Add(model.Epoch((f*batchSize+j)%int(w.Epochs)), item, 1)
		}
		frames[f] = append([]byte(nil), fb.Finish()...)
	}
	var srv *Server
	fill := perServer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batchSize {
		if fill >= perServer {
			b.StopTimer()
			if srv != nil {
				srv.Shutdown(context.Background())
			}
			c := dist.NewCluster(w, dist.MigrateNone, rfinfer.DefaultConfig())
			var err error
			srv, err = New(c, Config{Interval: w.Epochs, QueueSize: 1 << 30})
			if err != nil {
				b.Fatal(err)
			}
			fill = 0
			b.StartTimer()
		}
		if _, err := srv.IngestFrame(frames[(i/batchSize)%numFrames]); err != nil {
			b.Fatal(err)
		}
		fill += batchSize
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "readings/s")
	if srv != nil {
		srv.Shutdown(context.Background())
	}
}

// BenchmarkClientIngestBinEncode measures the client-side cost of
// IngestBin with the HTTP transport factored out: take a pooled encoder,
// encode the batch — one bulk append of its bytes on little-endian
// machines — finish the frame, return the encoder. This is everything a
// producer goroutine pays beyond the socket write, and it must stay
// zero-alloc in steady state.
func BenchmarkClientIngestBinEncode(b *testing.B) {
	var c Client
	const batchSize = 512
	rs := make([]dist.Reading, batchSize)
	for j := range rs {
		rs[j] = dist.Reading{T: model.Epoch(j % 1200), ID: model.TagID(j), Mask: 1}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batchSize {
		e := c.getEnc()
		e.b.BeginSection(0)
		addReadings(&e.b, rs)
		e.rd.Reset(e.b.Finish())
		c.binEncs.Put(e)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "readings/s")
}

// BenchmarkIngestWAL is BenchmarkIngest with durability on: every
// accepted reading is framed, CRC'd and buffered into its site's
// write-ahead segment inside the stripe critical section, with the group
// fsync on its default 100ms cadence. The acceptance floor is 500k
// readings/s — durable ingest must stay within ~2x of the memory-only
// path.
func BenchmarkIngestWAL(b *testing.B) {
	w := benchWorld(b)
	events := WorldEvents(w, nil)
	c := dist.NewCluster(w, dist.MigrateNone, rfinfer.DefaultConfig())
	srv, err := New(c, Config{Interval: w.Epochs, QueueSize: 1 << 17, DataDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	const batchSize = 512
	batch := make([]Event, 0, batchSize)
	var offset model.Epoch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := events[i%len(events)]
		if i%len(events) == 0 && i > 0 {
			offset += w.Epochs
		}
		ev.T += offset
		batch = append(batch, ev)
		if len(batch) == batchSize {
			if err := srv.Ingest(batch); err != nil {
				b.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		if err := srv.Ingest(batch); err != nil {
			b.Fatal(err)
		}
	}
	if err := srv.Drain(1); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "readings/s")
	if st := srv.Stats(); st.Invalid != 0 {
		b.Fatalf("bench stream counted %d invalid (last: %s)", st.Invalid, st.LastInvalid)
	}
}

// BenchmarkIngestBinWAL is the headline durable-binary number: the world
// streamed as multi-section batch frames (client-side encode included in
// the timed loop, as a real producer pays it) with every accepted reading
// appended to its site's write-ahead segment through the bulk buffered
// path. Frames flush at each cycle wrap so no frame straddles a
// checkpoint boundary. The acceptance floor is 3M readings/s.
func BenchmarkIngestBinWAL(b *testing.B) {
	w := benchWorld(b)
	events := WorldEvents(w, nil)
	c := dist.NewCluster(w, dist.MigrateNone, rfinfer.DefaultConfig())
	srv, err := New(c, Config{Interval: w.Epochs, QueueSize: 1 << 17, DataDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	const batchSize = 512
	var fb stream.FrameBuilder
	bySite := make([][]dist.Reading, len(w.Sites))
	pending := 0
	flush := func() {
		if pending == 0 {
			return
		}
		fb.Reset()
		for s, batch := range bySite {
			if len(batch) == 0 {
				continue
			}
			fb.BeginSection(s)
			for _, rd := range batch {
				fb.Add(rd.T, rd.ID, rd.Mask)
			}
			bySite[s] = bySite[s][:0]
		}
		if _, err := srv.IngestFrame(fb.Finish()); err != nil {
			b.Fatal(err)
		}
		pending = 0
	}
	var offset model.Epoch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := events[i%len(events)]
		if i%len(events) == 0 && i > 0 {
			flush() // never straddle the cycle-wrap checkpoint boundary
			offset += w.Epochs
		}
		bySite[ev.Site] = append(bySite[ev.Site], dist.Reading{T: ev.T + offset, ID: ev.Tag, Mask: ev.Mask})
		if pending++; pending == batchSize {
			flush()
		}
	}
	flush()
	if err := srv.Drain(1); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "readings/s")
	if st := srv.Stats(); st.Invalid != 0 || st.BadFrames != 0 {
		b.Fatalf("bench stream counted %d invalid, %d bad frames (last: %s)", st.Invalid, st.BadFrames, st.LastInvalid)
	}
}

// BenchmarkRecovery measures end-to-end recovery of the 4-site world: one
// New over a data directory holding a snapshot plus a realistic WAL tail
// (everything streamed after the last periodic snapshot), through state
// restore, tail re-ingest and scheduler catch-up. Reported as recover-ms.
func BenchmarkRecovery(b *testing.B) {
	w := benchWorld(b)
	const interval = model.Epoch(300)
	dir := b.TempDir()
	cfg := Config{Interval: interval, Horizon: w.Epochs, DataDir: dir, SyncEvery: -1, SnapshotEvery: 2}

	c := dist.NewCluster(w, dist.MigrateWeights, rfinfer.DefaultConfig())
	srv, err := New(c, cfg)
	if err != nil {
		b.Fatal(err)
	}
	events := WorldEvents(w, c.Departures())
	for i := 0; i < len(events); i += 512 {
		end := min(i+512, len(events))
		if err := srv.Ingest(events[i:end]); err != nil {
			b.Fatal(err)
		}
	}
	if err := srv.Abort(); err != nil { // crash-stop: snapshot + WAL tail on disk
		b.Fatal(err)
	}

	// Each iteration must recover the SAME crash state: disable periodic
	// snapshots in the recovering servers (otherwise the first recovery's
	// checkpoint catch-up would commit fresh snapshots into the shared
	// directory and later iterations would recover an almost-drained
	// state), and include the catch-up itself via the Drain barrier.
	recovCfg := cfg
	recovCfg.SnapshotEvery = -1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := dist.NewCluster(w, dist.MigrateWeights, rfinfer.DefaultConfig())
		srv, err := New(c, recovCfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := srv.Drain(1); err != nil { // owed-checkpoint catch-up barrier
			b.Fatal(err)
		}
		b.StopTimer()
		// Abort (not Shutdown) so the directory still holds the original
		// crash state for the next iteration.
		if err := srv.Abort(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Milliseconds())/float64(b.N), "recover-ms")
}

// BenchmarkCheckpoint measures scheduler latency: one Δ-interval
// checkpoint — seal, interval ingest, migrations, inference at all 4
// sites, scoring — driven through the public Ingest+Drain path.
func BenchmarkCheckpoint(b *testing.B) {
	w := benchWorld(b)
	const interval = model.Epoch(300)
	refDeps := dist.NewCluster(w, dist.MigrateWeights, rfinfer.DefaultConfig()).Departures()
	events := WorldEvents(w, refDeps)
	numCkpts := int(w.Epochs / interval)
	byCkpt := make([][]Event, numCkpts)
	for _, ev := range events {
		k := int(ev.Time() / interval)
		if k >= numCkpts {
			k = numCkpts - 1
		}
		byCkpt[k] = append(byCkpt[k], ev)
	}

	var srv *Server
	ckpt := numCkpts // force a fresh server on the first iteration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ckpt == numCkpts {
			b.StopTimer()
			if srv != nil {
				srv.Shutdown(context.Background())
			}
			c := dist.NewCluster(w, dist.MigrateWeights, rfinfer.DefaultConfig())
			var err error
			srv, err = New(c, Config{Interval: interval, Horizon: w.Epochs})
			if err != nil {
				b.Fatal(err)
			}
			ckpt = 0
			b.StartTimer()
		}
		if err := srv.Ingest(byCkpt[ckpt]); err != nil {
			b.Fatal(err)
		}
		if err := srv.Drain(model.Epoch(ckpt+1) * interval); err != nil {
			b.Fatal(err)
		}
		ckpt++
	}
	b.StopTimer()
	if srv != nil {
		srv.Shutdown(context.Background())
	}
}

// BenchmarkCheckpointIdle measures scheduler latency under the skew a
// deployed cluster actually sees: each Δ-interval only one of the 4 sites
// receives readings (rotating), so at every checkpoint 3 of 4 sites — and
// between bursts most tag groups at the hot site — are idle. This is the
// incremental Δ-checkpoint's home turf: clean groups carry their
// posteriors, evidence and critical regions forward, idle sites cost
// microseconds, and the fused scheduler packs them behind the hot site.
// One op is one checkpoint (Ingest + Drain). The acceptance ceiling is
// 10ms/op.
func BenchmarkCheckpointIdle(b *testing.B) {
	w := benchWorld(b)
	const interval = model.Epoch(300)
	events := WorldEvents(w, nil)
	numCkpts := int(w.Epochs / interval)
	byCkpt := make([][]Event, numCkpts)
	for _, ev := range events {
		k := min(int(ev.Time()/interval), numCkpts-1)
		if ev.Site != k%len(w.Sites) {
			continue // this interval, every other site is idle
		}
		byCkpt[k] = append(byCkpt[k], ev)
	}

	var srv *Server
	ckpt := numCkpts // force a fresh server on the first iteration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ckpt == numCkpts {
			b.StopTimer()
			if srv != nil {
				srv.Shutdown(context.Background())
			}
			c := dist.NewCluster(w, dist.MigrateNone, rfinfer.DefaultConfig())
			var err error
			srv, err = New(c, Config{Interval: interval, Horizon: w.Epochs})
			if err != nil {
				b.Fatal(err)
			}
			ckpt = 0
			b.StartTimer()
		}
		if err := srv.Ingest(byCkpt[ckpt]); err != nil {
			b.Fatal(err)
		}
		if err := srv.Drain(model.Epoch(ckpt+1) * interval); err != nil {
			b.Fatal(err)
		}
		ckpt++
	}
	b.StopTimer()
	if srv != nil {
		srv.Shutdown(context.Background())
	}
}

// BenchmarkIngestDuringCheckpoint pins the pipelining contract: while the
// scheduler grinds through Δ-checkpoints, a producer keeps ingesting
// future-interval readings, and its per-batch latency must stay
// independent of checkpoint latency. The pre-sharding runtime parked
// every batch behind the in-flight checkpoint, so its ingest p99 WAS the
// checkpoint latency (tens of milliseconds); the sharded runtime's p99
// stays at microseconds. Reported metrics: ingest-p99-us vs ckpt-max-ms
// (ns/op is meaningless here — the probe throttles itself between timed
// batches so its volume stays bounded).
func BenchmarkIngestDuringCheckpoint(b *testing.B) {
	w := benchWorld(b)
	const interval = model.Epoch(300)
	events := WorldEvents(w, nil)
	numCkpts := int(w.Epochs / interval)
	byCkpt := make([][]Event, numCkpts)
	for _, ev := range events {
		k := min(int(ev.Time()/interval), numCkpts-1)
		byCkpt[k] = append(byCkpt[k], ev)
	}

	c := dist.NewCluster(w, dist.MigrateNone, rfinfer.DefaultConfig())
	// The giant watermark disables the automatic due rule: checkpoints run
	// only when the driver drains a boundary, so the probe's future epochs
	// cannot spin the scheduler ahead of the stream. The deep QueueSize
	// keeps the probe's buckets from engaging backpressure.
	srv, err := New(c, Config{Interval: interval, Watermark: 1 << 29, MaxSkip: 1 << 18, QueueSize: 1 << 21})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	// Driver goroutine: streams the world cycle after cycle, draining each
	// Δ boundary so a checkpoint is in flight for most of the wall time.
	// probeBase trails two cycles ahead of the driver, so probe readings
	// always land in intervals the driver has not sealed yet.
	var probeBase atomic.Int64
	probeBase.Store(int64(2 * w.Epochs))
	stop := make(chan struct{})
	var driver sync.WaitGroup
	driver.Add(1)
	go func() {
		defer driver.Done()
		var offset model.Epoch
		for {
			probeBase.Store(int64(offset + 2*w.Epochs))
			for k := 0; k < numCkpts; k++ {
				select {
				case <-stop:
					return
				default:
				}
				batch := make([]Event, len(byCkpt[k]))
				copy(batch, byCkpt[k])
				for i := range batch {
					batch[i].T += offset
				}
				if srv.Ingest(batch) != nil {
					return
				}
				if srv.Drain(offset+model.Epoch(k+1)*interval) != nil {
					return
				}
			}
			offset += w.Epochs
		}
	}()

	// Probe: timed batches of future readings for site 1, racing the
	// driver's checkpoints.
	const probeSize = 256
	probe := make([]dist.Reading, probeSize)
	item := w.Sites[1].Items()[0]
	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := model.Epoch(probeBase.Load())
		for j := range probe {
			probe[j] = dist.Reading{T: base + model.Epoch(i%int(w.Epochs)), ID: item, Mask: 1}
		}
		start := time.Now()
		if err := srv.IngestBatch(1, probe); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(start))
		time.Sleep(200 * time.Microsecond) // bound probe volume, not latency
	}
	b.StopTimer()
	close(stop)
	driver.Wait()

	slices.Sort(lat)
	p99 := lat[len(lat)*99/100]
	st := srv.Stats()
	b.ReportMetric(float64(p99.Microseconds()), "ingest-p99-us")
	b.ReportMetric(float64(st.Sched.Max.Milliseconds()), "ckpt-max-ms")
	if st.Invalid != 0 {
		b.Fatalf("probe stream counted %d invalid (last: %s)", st.Invalid, st.LastInvalid)
	}
	if st.Sched.Advances > 0 && p99 > st.Sched.Max/4 && p99 > 5*time.Millisecond {
		b.Fatalf("ingest p99 %v tracks checkpoint latency (max %v): pipelining broken", p99, st.Sched.Max)
	}
}

// BenchmarkFanout100k measures the delivery tier at consumer scale:
// 100,000 registered subscribers — 99,000 tag-keyed over 10,000 tags (the
// realistic shape: each consumer watches its own few tags), 400 site-keyed,
// 472 pattern-keyed and 128 live match-all consumers draining with real
// goroutines — while one publisher fans alerts out through the sharded
// registry. One op is one published+dispatched alert, with the elapsed
// clock running until every live consumer has drained its last alert.
// Reported: matches/s (subscriber matches routed per second, index plus
// scan) and p99-delivery-ms (publish-to-consumer latency of the live
// pool, catch-up reads included). Queues are deliberately small so the
// overflow -> lagged -> cursor-catch-up path is part of the steady state
// being measured, not an untested corner.
func BenchmarkFanout100k(b *testing.B) {
	const (
		nTagSubs  = 99000
		nTags     = 10000
		nSiteSubs = 400
		nSites    = 4
		nPatSubs  = 472
		nLive     = 128
		queueSize = 16
	)
	patterns := [2]string{"q1", "q2"}
	l := newAlertLog()
	reg := newRegistry(l, queueSize)
	for i := 0; i < nTagSubs; i++ {
		f := MatchAll()
		f.Tag = model.TagID(i % nTags)
		reg.register(f, 0)
	}
	for i := 0; i < nSiteSubs; i++ {
		f := MatchAll()
		f.Site = i % nSites
		reg.register(f, 0)
	}
	for i := 0; i < nPatSubs; i++ {
		f := MatchAll()
		f.Pattern = patterns[i%2]
		reg.register(f, 0)
	}

	// pubTimes[i] is written before alert i is dispatched and read by a
	// live consumer only after delivery (ordered by the tier's locks).
	pubTimes := make([]time.Time, b.N)
	latCh := make(chan []time.Duration, nLive)
	var wg sync.WaitGroup
	for i := 0; i < nLive; i++ {
		sub := reg.register(MatchAll(), 0)
		wg.Add(1)
		go func(sub *subscriber) {
			defer wg.Done()
			var lats []time.Duration
			for {
				batch, done := sub.poll(256, 100*time.Millisecond)
				now := time.Now()
				for _, a := range batch {
					lats = append(lats, now.Sub(pubTimes[a.Seq]))
				}
				if done {
					latCh <- lats
					return
				}
			}
		}(sub)
	}

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		m := stream.Match{Tag: model.TagID(i % nTags), First: 0, Last: model.Epoch(i % 900)}
		pubTimes[i] = time.Now()
		if a, fresh := l.publish(i%nSites, patterns[i%2], m); fresh {
			reg.dispatch(a)
		}
	}
	l.close()
	reg.wakeAll()
	wg.Wait() // the op isn't done until the live pool has everything
	elapsed := time.Since(start)
	b.StopTimer()

	var all []time.Duration
	for i := 0; i < nLive; i++ {
		all = append(all, <-latCh...)
	}
	ds := reg.stats()
	matches := ds.ScanMatches
	for _, n := range ds.ShardMatches {
		matches += n
	}
	b.ReportMetric(float64(matches)/elapsed.Seconds(), "matches/s")
	b.ReportMetric(float64(percentileDuration(all, 0.99))/1e6, "p99-delivery-ms")
}

// BenchmarkPromotion measures the durable half of standby promotion: over
// a replica directory populated purely by WAL shipping (never written by
// a local server), bump the fence epoch and bring a server up — state
// restore, tail re-ingest and scheduler catch-up included via the Drain
// barrier. This is what stands between a dead primary and a serving
// successor, reported as promote-ms.
func BenchmarkPromotion(b *testing.B) {
	w := benchWorld(b)
	const interval = model.Epoch(300)
	dir := b.TempDir()
	cfg := Config{Interval: interval, Horizon: w.Epochs, DataDir: dir, SyncEvery: -1, SnapshotEvery: 2}

	c := dist.NewCluster(w, dist.MigrateWeights, rfinfer.DefaultConfig())
	srv, err := New(c, cfg)
	if err != nil {
		b.Fatal(err)
	}
	events := WorldEvents(w, c.Departures())
	for i := 0; i < len(events); i += 512 {
		end := min(i+512, len(events))
		if err := srv.Ingest(events[i:end]); err != nil {
			b.Fatal(err)
		}
	}
	if err := srv.Abort(); err != nil { // crash-stop: snapshot + WAL tail on disk
		b.Fatal(err)
	}

	// Ship the crashed primary's directory to the standby replica, exactly
	// as the subscribe loop would have.
	l, err := wal.Open(dir, len(w.Sites), wal.Options{SyncEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	replica := b.TempDir()
	rcv, err := wal.OpenReceiver(replica)
	if err != nil {
		b.Fatal(err)
	}
	for {
		pos, err := rcv.Pos()
		if err != nil {
			b.Fatal(err)
		}
		frames, err := l.ShipDelta(nil, pos, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(frames) == 0 {
			break
		}
		for len(frames) > 0 {
			rf, n, err := stream.DecodeReplFrame(frames)
			if err != nil {
				b.Fatal(err)
			}
			if err := rcv.Apply(rf); err != nil {
				b.Fatal(err)
			}
			frames = frames[n:]
		}
	}
	if err := rcv.Close(); err != nil {
		b.Fatal(err)
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}

	// Each iteration must promote the SAME shipped state: disable periodic
	// snapshots so catch-up checkpoints cannot commit fresh snapshots into
	// the shared replica (see BenchmarkRecovery); the growing FENCE epoch
	// is the one sanctioned mutation — promotion always bumps it.
	promCfg := cfg
	promCfg.DataDir = replica
	promCfg.SnapshotEvery = -1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		epoch, err := wal.ReadFence(replica)
		if err != nil {
			b.Fatal(err)
		}
		if err := wal.WriteFence(replica, epoch+1); err != nil {
			b.Fatal(err)
		}
		c := dist.NewCluster(w, dist.MigrateWeights, rfinfer.DefaultConfig())
		srv, err := New(c, promCfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := srv.Drain(1); err != nil { // owed-checkpoint catch-up barrier
			b.Fatal(err)
		}
		b.StopTimer()
		// Abort (not Shutdown) so the replica still holds the shipped state
		// for the next iteration.
		if err := srv.Abort(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Milliseconds())/float64(b.N), "promote-ms")
}

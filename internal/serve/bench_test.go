package serve

import (
	"context"
	"testing"

	"rfidtrack/internal/dist"
	"rfidtrack/internal/model"
	"rfidtrack/internal/rfinfer"
	"rfidtrack/internal/sim"
)

// benchWorld is the 4-site deployment the serve benchmarks run against.
func benchWorld(b *testing.B) *sim.World {
	b.Helper()
	cfg := sim.DefaultConfig()
	cfg.Warehouses = 4
	cfg.PathLength = 2
	cfg.Epochs = 1200
	cfg.ItemsPerCase = 3
	w, err := sim.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkIngest measures sustained ingestion into a 4-site cluster:
// validation, the bounded queue hop, per-site interval buffering, and the
// periodic checkpoints that drain the buffer — the steady state of a
// deployed daemon, with the readings of each simulated day arriving as
// fast as the server accepts them. One checkpoint runs per world cycle,
// so history truncation keeps memory flat at any b.N. The acceptance
// floor is 100k readings/s.
func BenchmarkIngest(b *testing.B) {
	w := benchWorld(b)
	events := WorldEvents(w, nil)
	c := dist.NewCluster(w, dist.MigrateNone, rfinfer.DefaultConfig())
	srv, err := New(c, Config{Interval: w.Epochs, QueueSize: 64})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	const batchSize = 512
	batch := make([]Event, 0, batchSize)
	var offset model.Epoch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := events[i%len(events)]
		if i%len(events) == 0 && i > 0 {
			offset += w.Epochs // keep stream time monotonic across cycles
		}
		ev.T += offset
		batch = append(batch, ev)
		if len(batch) == batchSize {
			if err := srv.Ingest(batch); err != nil {
				b.Fatal(err)
			}
			batch = make([]Event, 0, batchSize)
		}
	}
	if len(batch) > 0 {
		if err := srv.Ingest(batch); err != nil {
			b.Fatal(err)
		}
	}
	if err := srv.Drain(1); err != nil { // settle the queue before stopping the clock
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "readings/s")
	if st := srv.Stats(); st.Invalid != 0 {
		b.Fatalf("bench stream counted %d invalid (last: %s)", st.Invalid, st.LastInvalid)
	}
}

// BenchmarkCheckpoint measures scheduler latency: one Δ-interval
// checkpoint — queue hop, interval ingest, migrations, inference at all 4
// sites, scoring — driven through the public Ingest+Drain path.
func BenchmarkCheckpoint(b *testing.B) {
	w := benchWorld(b)
	const interval = model.Epoch(300)
	refDeps := dist.NewCluster(w, dist.MigrateWeights, rfinfer.DefaultConfig()).Departures()
	events := WorldEvents(w, refDeps)
	numCkpts := int(w.Epochs / interval)
	byCkpt := make([][]Event, numCkpts)
	for _, ev := range events {
		k := int(ev.Time() / interval)
		if k >= numCkpts {
			k = numCkpts - 1
		}
		byCkpt[k] = append(byCkpt[k], ev)
	}

	var srv *Server
	ckpt := numCkpts // force a fresh server on the first iteration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ckpt == numCkpts {
			b.StopTimer()
			if srv != nil {
				srv.Shutdown(context.Background())
			}
			c := dist.NewCluster(w, dist.MigrateWeights, rfinfer.DefaultConfig())
			var err error
			srv, err = New(c, Config{Interval: interval, Horizon: w.Epochs})
			if err != nil {
				b.Fatal(err)
			}
			ckpt = 0
			b.StartTimer()
		}
		if err := srv.Ingest(byCkpt[ckpt]); err != nil {
			b.Fatal(err)
		}
		if err := srv.Drain(model.Epoch(ckpt+1) * interval); err != nil {
			b.Fatal(err)
		}
		ckpt++
	}
	b.StopTimer()
	if srv != nil {
		srv.Shutdown(context.Background())
	}
}

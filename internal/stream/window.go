package stream

import (
	"container/list"

	"rfidtrack/internal/model"
)

// SlidingWindow materializes a CQL "[Range N]" time window per partition:
// tuples older than Range relative to the newest tuple of the same
// partition are evicted. Downstream aggregates read the live window.
type SlidingWindow struct {
	// Range is the window span in epochs.
	Range model.Epoch
	// Key partitions the stream (e.g. by tag or by sensor).
	Key func(Tuple) int64
	// Out, when set, receives every inserted tuple after eviction (IStream
	// semantics on the insert side).
	Out Sink

	parts map[int64]*list.List
}

// NewSlidingWindow returns an empty window.
func NewSlidingWindow(rng model.Epoch, key func(Tuple) int64) *SlidingWindow {
	return &SlidingWindow{Range: rng, Key: key, parts: make(map[int64]*list.List)}
}

// Push implements Operator.
func (w *SlidingWindow) Push(tu Tuple) {
	k := w.Key(tu)
	l := w.parts[k]
	if l == nil {
		l = list.New()
		w.parts[k] = l
	}
	l.PushBack(tu)
	for l.Len() > 0 {
		front := l.Front().Value.(Tuple)
		if front.T+w.Range > tu.T {
			break
		}
		l.Remove(l.Front())
	}
	if w.Out != nil {
		w.Out(tu)
	}
}

// Contents returns the partition's live tuples in arrival order.
func (w *SlidingWindow) Contents(key int64) []Tuple {
	l := w.parts[key]
	if l == nil {
		return nil
	}
	out := make([]Tuple, 0, l.Len())
	for e := l.Front(); e != nil; e = e.Next() {
		out = append(out, e.Value.(Tuple))
	}
	return out
}

// Aggregate computes per-partition running aggregates over a sliding
// window: count, sum, min, max, and mean of Temp. It emits one aggregate
// tuple downstream per input tuple (Rstream over the aggregate view).
type Aggregate struct {
	Window *SlidingWindow
	// Out receives one tuple per input with Temp = the selected aggregate.
	Out Sink
	// Fn selects the aggregate: one of "count", "sum", "min", "max", "avg".
	Fn string
}

// Push implements Operator.
func (a *Aggregate) Push(tu Tuple) {
	a.Window.Push(tu)
	if a.Out == nil {
		return
	}
	contents := a.Window.Contents(a.Window.Key(tu))
	if len(contents) == 0 {
		return
	}
	count := float64(len(contents))
	sum, minV, maxV := 0.0, contents[0].Temp, contents[0].Temp
	for _, c := range contents {
		sum += c.Temp
		if c.Temp < minV {
			minV = c.Temp
		}
		if c.Temp > maxV {
			maxV = c.Temp
		}
	}
	out := tu
	switch a.Fn {
	case "count":
		out.Temp = count
	case "sum":
		out.Temp = sum
	case "min":
		out.Temp = minV
	case "max":
		out.Temp = maxV
	default: // avg
		out.Temp = sum / count
	}
	a.Out(out)
}

// Union merges several upstream operators into one sink; tuples pass
// through unchanged (CQL's bag union over streams).
type Union struct {
	Out Sink
}

// Push implements Operator.
func (u *Union) Push(tu Tuple) { u.Out(tu) }

package stream

import (
	"fmt"

	"rfidtrack/internal/model"
)

// Tuple is one stream element. The schema unions the object event stream
// (time, tag id, location, container) of Section 2 with sensor readings and
// optional manufacturer attributes.
type Tuple struct {
	// T is the event timestamp (epoch).
	T model.Epoch
	// Tag is the object id, or -1 for pure sensor tuples.
	Tag model.TagID
	// Loc is the object or sensor location.
	Loc model.Loc
	// Container is the object's inferred container (-1 if none/unknown).
	Container model.TagID
	// Sensor is the sensor id, or -1 for object tuples.
	Sensor int32
	// Temp is the joined or measured temperature.
	Temp float64
	// Attrs carries optional object properties from the manufacturer's
	// database (e.g. product type). May be nil.
	Attrs map[string]string
}

// Attr returns an attribute value or "".
func (t Tuple) Attr(key string) string {
	if t.Attrs == nil {
		return ""
	}
	return t.Attrs[key]
}

// String renders the tuple compactly for logs and examples.
func (t Tuple) String() string {
	return fmt.Sprintf("t=%d tag=%d loc=%d cont=%d sensor=%d temp=%.1f",
		t.T, t.Tag, t.Loc, t.Container, t.Sensor, t.Temp)
}

// Sink consumes tuples produced by an operator.
type Sink func(Tuple)

// Operator transforms a stream: it consumes tuples via Push and emits to
// the sink given at construction.
type Operator interface {
	Push(Tuple)
}

// Filter emits only tuples satisfying pred.
type Filter struct {
	Pred func(Tuple) bool
	Out  Sink
}

// Push implements Operator.
func (f *Filter) Push(tu Tuple) {
	if f.Pred(tu) {
		f.Out(tu)
	}
}

// Map transforms each tuple.
type Map struct {
	Fn  func(Tuple) Tuple
	Out Sink
}

// Push implements Operator.
func (m *Map) Push(tu Tuple) { m.Out(m.Fn(tu)) }

// RowsTable materializes a "[Partition By key Rows 1]" window: the latest
// tuple per partition key. It is the build side of a lookup join.
type RowsTable struct {
	Key  func(Tuple) int64
	rows map[int64]Tuple
}

// NewRowsTable returns an empty table partitioned by key.
func NewRowsTable(key func(Tuple) int64) *RowsTable {
	return &RowsTable{Key: key, rows: make(map[int64]Tuple)}
}

// Push implements Operator (updates the partition's latest row).
func (rt *RowsTable) Push(tu Tuple) { rt.rows[rt.Key(tu)] = tu }

// Lookup returns the latest row for a key.
func (rt *RowsTable) Lookup(key int64) (Tuple, bool) {
	tu, ok := rt.rows[key]
	return tu, ok
}

// Len returns the number of partitions with a row.
func (rt *RowsTable) Len() int { return len(rt.rows) }

// LookupJoin joins a probe stream ("[Now]" window) against a RowsTable and
// emits the combined tuple via Combine for every match — the CQL
// Rstream(probe [Now] ⋈ table) block of Query 1.
type LookupJoin struct {
	Table   *RowsTable
	Key     func(Tuple) int64
	Combine func(probe, build Tuple) (Tuple, bool)
	Out     Sink
}

// Push implements Operator for the probe side.
func (j *LookupJoin) Push(tu Tuple) {
	build, ok := j.Table.Lookup(j.Key(tu))
	if !ok {
		return
	}
	if out, ok := j.Combine(tu, build); ok {
		j.Out(out)
	}
}

// Tee pushes every tuple to multiple sinks in order.
type Tee struct {
	Outs []Sink
}

// Push implements Operator.
func (t *Tee) Push(tu Tuple) {
	for _, out := range t.Outs {
		out(tu)
	}
}

// The migration frame codec: the network wire format of one inter-site
// state migration (internal/dist's encoded payloads crossing process
// boundaries). One frame carries one departure plus its opaque payload:
//
//	header (24 bytes):
//	  [4 bytes magic "RFM1"]
//	  [4 bytes little-endian frame length, header and trailer included]
//	  [4 bytes little-endian object tag]
//	  [4 bytes little-endian source site]
//	  [4 bytes little-endian destination site]
//	  [4 bytes little-endian departure epoch]
//	body:
//	  [payload bytes: the dist migration payload, opaque here]
//	trailer:
//	  [4 bytes CRC32-Castagnoli of everything before it]
//
// The framing follows the batch frame codec above: torn frames are
// distinguishable from corrupt ones (ErrFramePartial vs ErrFrameCorrupt,
// shared with RFB1), and no length from the wire is trusted before it is
// checked against the bytes actually present. The payload itself is not
// interpreted — its own codecs (rfinfer collapsed/CR state, query pattern
// state) harden its contents — so the frame layer only vouches that the
// bytes that arrive are the bytes that were sent, addressed to the right
// transfer.
package stream

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"rfidtrack/internal/model"
)

// MigrationMagic identifies (and versions) a migration frame: "RFM1" as a
// little-endian uint32. An incompatible future layout gets a new magic.
const MigrationMagic = uint32('R') | uint32('F')<<8 | uint32('M')<<16 | uint32('1')<<24

const (
	// migFrameHeaderLen is the fixed frame prefix: magic, frame length,
	// object, from, to, at.
	migFrameHeaderLen = 24
	// migFrameTrailerLen is the CRC32-Castagnoli trailer.
	migFrameTrailerLen = 4
)

// MaxMigrationPayload bounds one frame's payload. The largest real payload
// (MigrateFull of a long-lived object with many candidate containers) is
// tens of kilobytes; 16MB leaves three orders of magnitude of headroom
// while keeping a hostile length from sizing a buffer.
const MaxMigrationPayload = 1 << 24

// MigrationFrame is one decoded migration transfer: the departure identity
// and the opaque payload. Payload is a view into the decode buffer — valid
// only while that buffer is.
type MigrationFrame struct {
	// Object is the migrating tag; From and To the source and destination
	// sites; At the departure epoch — together the departure identity the
	// receiver routes the payload by.
	Object   model.TagID
	From, To int
	At       model.Epoch
	// Payload is the encoded migration state, opaque at this layer.
	Payload []byte
}

// AppendMigrationFrame appends the framed encoding of one migration
// transfer to dst and returns the extended slice.
func AppendMigrationFrame(dst []byte, object model.TagID, from, to int, at model.Epoch, payload []byte) []byte {
	start := len(dst)
	var hdr [migFrameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[:], MigrationMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(migFrameHeaderLen+len(payload)+migFrameTrailerLen))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(object))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(from))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(to))
	binary.LittleEndian.PutUint32(hdr[20:], uint32(at))
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	crc := crc32.Checksum(dst[start:], frameCastagnoli)
	var tr [migFrameTrailerLen]byte
	binary.LittleEndian.PutUint32(tr[:], crc)
	return append(dst, tr[:]...)
}

// DecodeMigrationFrame decodes the first migration frame in b, returning
// the frame and its total length in bytes. The frame's Payload is a
// zero-copy view into b. A buffer shorter than the frame's declared length
// yields ErrFramePartial; a complete frame that fails validation yields
// ErrFrameCorrupt. On error n is 0.
func DecodeMigrationFrame(b []byte) (mf MigrationFrame, n int, err error) {
	if len(b) < migFrameHeaderLen {
		return mf, 0, ErrFramePartial
	}
	if magic := binary.LittleEndian.Uint32(b); magic != MigrationMagic {
		return mf, 0, fmt.Errorf("%w: bad migration magic %#x", ErrFrameCorrupt, magic)
	}
	frameLen := int(binary.LittleEndian.Uint32(b[4:]))
	if frameLen < migFrameHeaderLen+migFrameTrailerLen ||
		frameLen > migFrameHeaderLen+MaxMigrationPayload+migFrameTrailerLen {
		return mf, 0, fmt.Errorf("%w: implausible migration frame length %d", ErrFrameCorrupt, frameLen)
	}
	if len(b) < frameLen {
		return mf, 0, ErrFramePartial
	}
	frame := b[:frameLen]
	wantCRC := binary.LittleEndian.Uint32(frame[frameLen-migFrameTrailerLen:])
	if crc := crc32.Checksum(frame[:frameLen-migFrameTrailerLen], frameCastagnoli); crc != wantCRC {
		return mf, 0, fmt.Errorf("%w: migration frame CRC mismatch", ErrFrameCorrupt)
	}
	mf.Object = model.TagID(int32(binary.LittleEndian.Uint32(frame[8:])))
	mf.From = int(int32(binary.LittleEndian.Uint32(frame[12:])))
	mf.To = int(int32(binary.LittleEndian.Uint32(frame[16:])))
	mf.At = model.Epoch(int32(binary.LittleEndian.Uint32(frame[20:])))
	if body := frame[migFrameHeaderLen : frameLen-migFrameTrailerLen]; len(body) > 0 {
		mf.Payload = body
	}
	return mf, frameLen, nil
}

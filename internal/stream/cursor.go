// The alert-cursor codec: the opaque resume token the delivery tier hands
// to consumers. A cursor names a position in the server's append-only
// alert log (the sequence number of the next alert the consumer has not
// seen); a reconnecting consumer passes it back — GET /alerts?cursor=, the
// SSE Last-Event-ID header, or Client.Follow — and replays the gap from
// the durable log. The token carries its own CRC so a truncated or
// hand-mangled cursor is rejected instead of silently resuming from the
// wrong position, and decoding follows the same hardening stance as the
// WAL codec: never panic, never trust bytes from the wire.
package stream

import (
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"
)

// alertCursorPrefix versions the cursor wire form ("ac1-<seq hex>-<crc>").
const alertCursorPrefix = "ac1-"

// EncodeAlertCursor encodes an alert-log position as an opaque resume
// token. Negative positions clamp to 0 (resume from the log's start).
func EncodeAlertCursor(seq int64) string {
	if seq < 0 {
		seq = 0
	}
	body := alertCursorPrefix + strconv.FormatInt(seq, 16)
	return body + "-" + fmt.Sprintf("%08x", crc32.ChecksumIEEE([]byte(body)))
}

// DecodeAlertCursor reverses EncodeAlertCursor. It accepts only canonical
// tokens — re-encoding the decoded position must reproduce the input
// byte-for-byte — so a consumer cannot resume from a corrupted or
// hand-edited cursor that happens to half-parse. It never panics.
func DecodeAlertCursor(s string) (int64, error) {
	if !strings.HasPrefix(s, alertCursorPrefix) {
		return 0, fmt.Errorf("stream: not an alert cursor: %q", s)
	}
	dash := strings.LastIndexByte(s, '-')
	if dash < len(alertCursorPrefix) {
		return 0, fmt.Errorf("stream: malformed alert cursor: %q", s)
	}
	body, sum := s[:dash], s[dash+1:]
	if len(sum) != 8 {
		return 0, fmt.Errorf("stream: malformed alert cursor checksum: %q", s)
	}
	want, err := strconv.ParseUint(sum, 16, 32)
	if err != nil {
		return 0, fmt.Errorf("stream: malformed alert cursor checksum: %q", s)
	}
	if uint32(want) != crc32.ChecksumIEEE([]byte(body)) {
		return 0, fmt.Errorf("stream: alert cursor checksum mismatch: %q", s)
	}
	seq, err := strconv.ParseInt(body[len(alertCursorPrefix):], 16, 64)
	if err != nil || seq < 0 {
		return 0, fmt.Errorf("stream: malformed alert cursor position: %q", s)
	}
	if EncodeAlertCursor(seq) != s {
		// A non-canonical spelling (leading zeros, "+", uppercase hex) whose
		// CRC happens to validate still does not round-trip; refuse it so
		// every accepted cursor has exactly one wire form.
		return 0, fmt.Errorf("stream: non-canonical alert cursor: %q", s)
	}
	return seq, nil
}

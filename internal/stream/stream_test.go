package stream

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"rfidtrack/internal/model"
)

func collect(out *[]Tuple) Sink {
	return func(tu Tuple) { *out = append(*out, tu) }
}

func TestFilter(t *testing.T) {
	var out []Tuple
	f := &Filter{Pred: func(tu Tuple) bool { return tu.Temp > 10 }, Out: collect(&out)}
	f.Push(Tuple{Temp: 5})
	f.Push(Tuple{Temp: 15})
	f.Push(Tuple{Temp: 25})
	if len(out) != 2 || out[0].Temp != 15 {
		t.Fatalf("out = %v", out)
	}
}

func TestMap(t *testing.T) {
	var out []Tuple
	m := &Map{Fn: func(tu Tuple) Tuple { tu.Temp *= 2; return tu }, Out: collect(&out)}
	m.Push(Tuple{Temp: 3})
	if len(out) != 1 || out[0].Temp != 6 {
		t.Fatalf("out = %v", out)
	}
}

func TestRowsTableKeepsLatest(t *testing.T) {
	rt := NewRowsTable(func(tu Tuple) int64 { return int64(tu.Sensor) })
	rt.Push(Tuple{Sensor: 1, Temp: 10, T: 1})
	rt.Push(Tuple{Sensor: 1, Temp: 20, T: 2})
	rt.Push(Tuple{Sensor: 2, Temp: 30, T: 2})
	if rt.Len() != 2 {
		t.Fatalf("len = %d", rt.Len())
	}
	if tu, ok := rt.Lookup(1); !ok || tu.Temp != 20 {
		t.Fatalf("lookup(1) = %v %v", tu, ok)
	}
	if _, ok := rt.Lookup(9); ok {
		t.Fatal("lookup(9) found phantom row")
	}
}

func TestLookupJoin(t *testing.T) {
	table := NewRowsTable(func(tu Tuple) int64 { return int64(tu.Loc) })
	table.Push(Tuple{Loc: 2, Sensor: 2, Temp: 21})
	var out []Tuple
	join := &LookupJoin{
		Table: table,
		Key:   func(tu Tuple) int64 { return int64(tu.Loc) },
		Combine: func(probe, build Tuple) (Tuple, bool) {
			probe.Temp = build.Temp
			return probe, probe.Temp > 0
		},
		Out: collect(&out),
	}
	join.Push(Tuple{Tag: 7, Loc: 2}) // matches
	join.Push(Tuple{Tag: 8, Loc: 3}) // no build row
	if len(out) != 1 || out[0].Tag != 7 || out[0].Temp != 21 {
		t.Fatalf("out = %v", out)
	}
}

func TestTee(t *testing.T) {
	var a, b []Tuple
	tee := &Tee{Outs: []Sink{collect(&a), collect(&b)}}
	tee.Push(Tuple{Tag: 1})
	if len(a) != 1 || len(b) != 1 {
		t.Fatalf("a=%d b=%d", len(a), len(b))
	}
}

func TestSeqPatternFiresAfterDuration(t *testing.T) {
	var matches []Match
	p := NewSeqPattern(100, 0, func(m Match) { matches = append(matches, m) })
	for _, e := range []model.Epoch{0, 50, 99, 100} {
		p.Push(Tuple{Tag: 1, T: e, Temp: float64(e)})
	}
	if len(matches) != 0 {
		t.Fatalf("fired at span == duration: %v", matches)
	}
	p.Push(Tuple{Tag: 1, T: 101, Temp: 9})
	if len(matches) != 1 {
		t.Fatalf("matches = %d", len(matches))
	}
	m := matches[0]
	if m.Tag != 1 || m.First != 0 || m.Last != 101 || len(m.Values) != 5 {
		t.Fatalf("match = %+v", m)
	}
	// Fires at most once per episode.
	p.Push(Tuple{Tag: 1, T: 200})
	if len(matches) != 1 {
		t.Fatal("fired twice in one episode")
	}
}

func TestSeqPatternPartitions(t *testing.T) {
	var matches []Match
	p := NewSeqPattern(10, 0, func(m Match) { matches = append(matches, m) })
	p.Push(Tuple{Tag: 1, T: 0})
	p.Push(Tuple{Tag: 2, T: 5})
	p.Push(Tuple{Tag: 1, T: 11})
	if len(matches) != 1 || matches[0].Tag != 1 {
		t.Fatalf("matches = %v", matches)
	}
	if got := p.Partitions(); !reflect.DeepEqual(got, []model.TagID{1, 2}) {
		t.Fatalf("partitions = %v", got)
	}
}

func TestSeqPatternMaxGapResets(t *testing.T) {
	var matches []Match
	p := NewSeqPattern(100, 20, func(m Match) { matches = append(matches, m) })
	p.Push(Tuple{Tag: 1, T: 0})
	p.Push(Tuple{Tag: 1, T: 10})
	p.Push(Tuple{Tag: 1, T: 80})  // gap 70 > 20: episode restarts here
	p.Push(Tuple{Tag: 1, T: 150}) // gap 70: restarts again
	if len(matches) != 0 {
		t.Fatalf("matches = %v", matches)
	}
	st := p.State(1)
	if st.First != 150 {
		t.Fatalf("episode start = %d, want 150", st.First)
	}
}

func TestSeqPatternReset(t *testing.T) {
	var matches []Match
	p := NewSeqPattern(50, 0, func(m Match) { matches = append(matches, m) })
	p.Push(Tuple{Tag: 3, T: 0})
	p.Reset(3)
	p.Push(Tuple{Tag: 3, T: 60})
	p.Push(Tuple{Tag: 3, T: 70})
	if len(matches) != 0 {
		t.Fatalf("fired across a reset: %v", matches)
	}
}

func TestSeqStateMigration(t *testing.T) {
	p := NewSeqPattern(1000, 0, nil)
	p.Push(Tuple{Tag: 5, T: 10, Temp: 1.5})
	p.Push(Tuple{Tag: 5, T: 20, Temp: 2.5})
	st := p.State(5)

	var buf bytes.Buffer
	if err := EncodeState(&buf, st); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeState(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*st, dec) {
		t.Fatalf("round trip: got %+v, want %+v", dec, *st)
	}

	q := NewSeqPattern(1000, 0, nil)
	q.SetState(5, dec)
	p.DropState(5)
	if p.State(5) != nil {
		t.Fatal("state not dropped")
	}
	var matches []Match
	q.OnMatch = func(m Match) { matches = append(matches, m) }
	q.Push(Tuple{Tag: 5, T: 1011, Temp: 3.5})
	if len(matches) != 1 {
		t.Fatalf("migrated episode did not complete: %v", matches)
	}
	if matches[0].First != 10 || len(matches[0].Values) != 3 {
		t.Fatalf("match = %+v", matches[0])
	}
}

func TestSeqStateRoundTripProperty(t *testing.T) {
	f := func(started, fired bool, first, last int32, values []float64) bool {
		st := SeqState{Started: started, Fired: fired,
			First: model.Epoch(first), Last: model.Epoch(last), Values: values}
		var buf bytes.Buffer
		if err := EncodeState(&buf, &st); err != nil {
			return false
		}
		dec, err := DecodeState(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		if len(st.Values) == 0 && len(dec.Values) == 0 {
			dec.Values, st.Values = nil, nil
		}
		return reflect.DeepEqual(st, dec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTupleAttrAndString(t *testing.T) {
	tu := Tuple{T: 5, Tag: 2, Loc: 3, Container: 4, Sensor: -1, Temp: 1.25}
	if tu.Attr("x") != "" {
		t.Error("nil attrs lookup")
	}
	tu.Attrs = map[string]string{"type": "frozen"}
	if tu.Attr("type") != "frozen" {
		t.Error("attr lookup")
	}
	if tu.String() == "" {
		t.Error("empty String()")
	}
}

// Package stream implements the continuous query processing substrate of
// Section 4.2 and Appendix B: CQL-style relational operators over event
// streams (selection, projection, partitioned row windows, lookup joins,
// Rstream) plus an automaton-based SEQ(A+) pattern matcher whose
// computation state is partitioned per object and serializable so it can be
// migrated between sites.
//
// The engine is push-based: every operator consumes tuples and pushes
// results to its sink. A pipeline for one query block is assembled by
// chaining operators; Rstream semantics fall out naturally because each
// emission is a stream element.
package stream

package stream

import (
	"errors"
	"reflect"
	"testing"
)

// replSamples is a spread of representative replication frames: segment
// and snapshot chunks at zero and non-zero offsets, the empty-payload
// control kinds, and a status heartbeat.
func replSamples() []ReplFrame {
	return []ReplFrame{
		{Kind: ReplSegment, Site: 0, Gen: 1, Off: 0, Payload: []byte{1}},
		{Kind: ReplSegment, Site: -2, Gen: 7, Off: 1 << 20,
			Payload: []byte{0xde, 0xad, 0xbe, 0xef, 0, 1, 2, 3, 4, 5, 6, 7}},
		{Kind: ReplSnapshot, Site: 0, Gen: 300, Off: 0, Payload: []byte{42}},
		{Kind: ReplSnapshot, Site: 1, Gen: 900, Off: 4096, Payload: []byte{9, 9, 9}},
		{Kind: ReplManifest, Site: 1, Gen: 3, Off: 900},
		{Kind: ReplTruncate, Site: 2, Gen: 5, Off: 128},
		{Kind: ReplStatus, Off: 4,
			Payload: []byte{0x84, 3, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0}},
	}
}

// TestReplFrameRoundTrip pins encode -> decode identity plus the
// consumed-byte accounting the follower's stream reader depends on.
func TestReplFrameRoundTrip(t *testing.T) {
	var buf []byte
	var ends []int
	for _, rf := range replSamples() {
		buf = AppendReplFrame(buf, rf.Kind, rf.Site, rf.Gen, rf.Off, rf.Payload)
		ends = append(ends, len(buf))
	}
	off := 0
	for i, want := range replSamples() {
		got, n, err := DecodeReplFrame(buf[off:])
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		// Payload is a view into buf; compare by value.
		if got.Kind != want.Kind || got.Site != want.Site || got.Gen != want.Gen || got.Off != want.Off {
			t.Fatalf("frame %d: decoded %+v, want %+v", i, got, want)
		}
		if !reflect.DeepEqual(got.Payload, want.Payload) {
			t.Fatalf("frame %d: payload %v, want %v", i, got.Payload, want.Payload)
		}
		off += n
		if off != ends[i] {
			t.Fatalf("frame %d: consumed through %d, want %d", i, off, ends[i])
		}
	}
	if off != len(buf) {
		t.Fatalf("consumed %d of %d bytes", off, len(buf))
	}
}

// TestReplStatusRoundTrip pins the status heartbeat's field packing: the
// fence epoch, stream time and appended-bytes counter a standby uses to
// judge its primary's liveness must survive the wire exactly.
func TestReplStatusRoundTrip(t *testing.T) {
	buf := AppendReplStatus(nil, 3, 900, 1<<30)
	rf, n, err := DecodeReplFrame(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	if rf.Kind != ReplStatus {
		t.Fatalf("kind = %d, want ReplStatus", rf.Kind)
	}
	fence, stream, appended := DecodeReplStatus(rf)
	if fence != 3 || stream != 900 || appended != 1<<30 {
		t.Fatalf("status = (%d, %d, %d), want (3, 900, %d)", fence, stream, appended, 1<<30)
	}
}

// TestReplFramePartial pins the torn-frame contract: any prefix of a
// valid frame yields ErrFramePartial, never a decode and never corruption.
func TestReplFramePartial(t *testing.T) {
	full := AppendReplFrame(nil, ReplSegment, 3, 2, 600, []byte{9, 8, 7})
	for cut := 0; cut < len(full); cut++ {
		_, n, err := DecodeReplFrame(full[:cut])
		if !errors.Is(err, ErrFramePartial) {
			t.Fatalf("cut at %d: err = %v, want ErrFramePartial", cut, err)
		}
		if n != 0 {
			t.Fatalf("cut at %d: consumed %d bytes on error", cut, n)
		}
	}
}

// TestReplFrameCorruption pins that bit rot anywhere in a complete frame
// is detected — as corruption, or as a partial frame when the flipped bit
// lands in the length field — never silently applied to the follower's
// WAL as different bytes.
func TestReplFrameCorruption(t *testing.T) {
	want := ReplFrame{Kind: ReplSegment, Site: 2, Gen: 5, Off: 600, Payload: []byte{1, 2, 3}}
	clean := AppendReplFrame(nil, want.Kind, want.Site, want.Gen, want.Off, want.Payload)
	for i := range clean {
		for _, bit := range []byte{0x01, 0x80} {
			dirty := append([]byte(nil), clean...)
			dirty[i] ^= bit
			got, _, err := DecodeReplFrame(dirty)
			if err == nil {
				if got.Kind != want.Kind || got.Site != want.Site ||
					got.Gen != want.Gen || got.Off != want.Off ||
					!reflect.DeepEqual(got.Payload, want.Payload) {
					t.Fatalf("byte %d bit %#x decoded silently as %+v", i, bit, got)
				}
				continue
			}
			if !errors.Is(err, ErrFrameCorrupt) && !errors.Is(err, ErrFramePartial) {
				t.Fatalf("byte %d bit %#x: err = %v, want frame error", i, bit, err)
			}
		}
	}
}

// TestReplFrameRejectsMalformedControl pins the control-kind validation:
// a manifest or truncate frame with payload bytes, a status frame of the
// wrong length, and an unknown kind are corruption, not data.
func TestReplFrameRejectsMalformedControl(t *testing.T) {
	cases := []struct {
		name  string
		frame []byte
	}{
		{"manifest with payload", AppendReplFrame(nil, ReplManifest, 0, 1, 300, []byte{1})},
		{"truncate with payload", AppendReplFrame(nil, ReplTruncate, 0, 1, 64, []byte{1})},
		{"status short", AppendReplFrame(nil, ReplStatus, 0, 0, 1, []byte{1, 2, 3})},
		{"unknown kind", AppendReplFrame(nil, 99, 0, 0, 0, nil)},
		{"negative chunk offset", AppendReplFrame(nil, ReplSegment, 0, 1, -8, []byte{1})},
	}
	for _, tc := range cases {
		if _, n, err := DecodeReplFrame(tc.frame); !errors.Is(err, ErrFrameCorrupt) || n != 0 {
			t.Fatalf("%s: n=%d err=%v, want ErrFrameCorrupt", tc.name, n, err)
		}
	}
}

// FuzzDecodeReplicationFrame hardens the replication decoder against
// arbitrary bytes: no panics, no allocation from untrusted lengths, and
// every accepted frame must re-encode byte-identically — the property
// that lets a follower re-request and re-apply a batch after a torn
// connection without diverging from the primary's WAL.
func FuzzDecodeReplicationFrame(f *testing.F) {
	for _, rf := range replSamples() {
		f.Add(AppendReplFrame(nil, rf.Kind, rf.Site, rf.Gen, rf.Off, rf.Payload))
	}
	f.Add(AppendReplStatus(nil, 1, 300, 4096))
	f.Add([]byte{})
	f.Add([]byte("RFS1"))
	f.Fuzz(func(t *testing.T, b []byte) {
		rf, n, err := DecodeReplFrame(b)
		if err != nil {
			if n != 0 {
				t.Fatalf("error %v consumed %d bytes", err, n)
			}
			if !errors.Is(err, ErrFramePartial) && !errors.Is(err, ErrFrameCorrupt) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if n < replFrameHeaderLen+replFrameTrailerLen || n > len(b) {
			t.Fatalf("consumed %d bytes of %d", n, len(b))
		}
		again := AppendReplFrame(nil, rf.Kind, rf.Site, rf.Gen, rf.Off, rf.Payload)
		if !reflect.DeepEqual(again, b[:n]) {
			t.Fatalf("re-encode diverged from accepted frame")
		}
	})
}

var benchReplFrameSink int64

// BenchmarkReplWire measures the encode+decode round trip of a
// representative shipping chunk (a 4 KiB segment tail).
func BenchmarkReplWire(b *testing.B) {
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	buf := make([]byte, 0, replFrameHeaderLen+len(payload)+replFrameTrailerLen)
	b.SetBytes(int64(replFrameHeaderLen + len(payload) + replFrameTrailerLen))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendReplFrame(buf[:0], ReplSegment, 3, 2, int64(i), payload)
		rf, _, err := DecodeReplFrame(buf)
		if err != nil {
			b.Fatal(err)
		}
		benchReplFrameSink = rf.Off
	}
}

package stream

import (
	"errors"
	"reflect"
	"testing"

	"rfidtrack/internal/model"
)

// walSamples is a spread of representative records.
func walSamples() []WALRecord {
	return []WALRecord{
		{Kind: WALReading, Site: 0, T: 0, Tag: 0, Mask: 1},
		{Kind: WALReading, Site: 3, T: 299, Tag: 41, Mask: 0b1011},
		{Kind: WALReading, Site: 15, T: 1 << 29, Tag: 1 << 20, Mask: ^model.Mask(0)},
		{Kind: WALDepart, Object: 7, From: 0, To: 1, At: 600},
		{Kind: WALDepart, Object: 1 << 20, From: 14, To: 15, At: 1 << 29},
		{Kind: WALMigration, Object: 7, From: 0, To: 1, At: 600},
		{Kind: WALMigration, Object: 9, From: 2, To: 0, At: 1200,
			Payload: []byte{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}},
	}
}

// TestWALRoundTrip pins encode -> decode identity for a stream of mixed
// records, including the consumed-byte accounting ScanWAL depends on.
func TestWALRoundTrip(t *testing.T) {
	samples := walSamples()
	var buf []byte
	for _, rec := range samples {
		buf = AppendWALRecord(buf, rec)
	}
	var got []WALRecord
	valid, err := ScanWAL(buf, func(rec WALRecord) error {
		got = append(got, rec)
		return nil
	})
	if err != nil {
		t.Fatalf("ScanWAL: %v", err)
	}
	if valid != len(buf) {
		t.Fatalf("ScanWAL consumed %d of %d bytes", valid, len(buf))
	}
	if !reflect.DeepEqual(got, samples) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, samples)
	}
}

// TestWALTornTail pins the crash-recovery contract: a log truncated at any
// byte offset scans cleanly — every record before the cut decodes, the cut
// frame reports ErrWALPartial, and the truncation point is exactly the end
// of the last whole record.
func TestWALTornTail(t *testing.T) {
	samples := walSamples()
	var buf []byte
	var ends []int // offset after each record
	for _, rec := range samples {
		buf = AppendWALRecord(buf, rec)
		ends = append(ends, len(buf))
	}
	for cut := 0; cut < len(buf); cut++ {
		count := 0
		valid, err := ScanWAL(buf[:cut], func(WALRecord) error { count++; return nil })
		wantCount := 0
		for _, e := range ends {
			if e <= cut {
				wantCount++
			}
		}
		wantValid := 0
		if wantCount > 0 {
			wantValid = ends[wantCount-1]
		}
		if count != wantCount || valid != wantValid {
			t.Fatalf("cut at %d: scanned %d records through offset %d, want %d through %d",
				cut, count, valid, wantCount, wantValid)
		}
		if valid != cut && !errors.Is(err, ErrWALPartial) {
			t.Fatalf("cut at %d: err = %v, want ErrWALPartial", cut, err)
		}
	}
}

// TestWALCorruption pins that bit rot inside a complete frame is detected
// as ErrWALCorrupt, never decoded as a different record silently... except
// inside the CRC's own collision space, which a single flipped bit never
// reaches.
func TestWALCorruption(t *testing.T) {
	rec := WALRecord{Kind: WALReading, Site: 2, T: 600, Tag: 17, Mask: 5}
	clean := AppendWALRecord(nil, rec)
	for i := range clean {
		dirty := append([]byte(nil), clean...)
		dirty[i] ^= 0x40
		_, _, err := DecodeWALRecord(dirty)
		if err == nil {
			// Flipping a length byte can turn the frame into a partial one
			// only; a silent successful decode of different bytes is the
			// failure mode this test exists for.
			got, _, _ := DecodeWALRecord(dirty)
			if !reflect.DeepEqual(got, rec) {
				t.Fatalf("flipped byte %d decoded silently as %+v", i, got)
			}
			continue
		}
		if !errors.Is(err, ErrWALCorrupt) && !errors.Is(err, ErrWALPartial) {
			t.Fatalf("flipped byte %d: err = %v, want ErrWALCorrupt or ErrWALPartial", i, err)
		}
	}
}

// FuzzDecodeWALRecord hardens the log decoder against arbitrary bytes: it
// must never panic, never allocate from an untrusted length, and every
// accepted record must re-encode to a frame that decodes to the same
// record (the round-trip invariant recovery relies on when it rewrites a
// truncated tail).
func FuzzDecodeWALRecord(f *testing.F) {
	for _, rec := range walSamples() {
		f.Add(AppendWALRecord(nil, rec))
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add(AppendWALRecord(nil, WALRecord{Kind: 99}))
	f.Fuzz(func(t *testing.T, b []byte) {
		rec, n, err := DecodeWALRecord(b)
		if err != nil {
			if n != 0 {
				t.Fatalf("error %v consumed %d bytes", err, n)
			}
			if !errors.Is(err, ErrWALPartial) && !errors.Is(err, ErrWALCorrupt) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if n < walFrameHeader || n > len(b) {
			t.Fatalf("consumed %d bytes of %d", n, len(b))
		}
		again, m, err := DecodeWALRecord(AppendWALRecord(nil, rec))
		if err != nil {
			t.Fatalf("re-encode failed to decode: %v", err)
		}
		if !reflect.DeepEqual(again, rec) || m == 0 {
			t.Fatalf("re-encode round trip diverged: %+v vs %+v", again, rec)
		}
		// A scan over the full input must terminate and stay panic-free.
		if _, err := ScanWAL(b, func(WALRecord) error { return nil }); err != nil &&
			!errors.Is(err, ErrWALPartial) && !errors.Is(err, ErrWALCorrupt) {
			t.Fatalf("ScanWAL error class: %v", err)
		}
	})
}

// The binary batch frame codec: the high-throughput ingest wire format of
// the online runtime (POST /ingest/bin). One frame carries one or more
// per-site sections of fixed-width reading records:
//
//	header (16 bytes):
//	  [4 bytes magic "RFB1"]
//	  [4 bytes little-endian frame length, header and trailer included]
//	  [4 bytes little-endian section count]
//	  [4 bytes little-endian total record count]
//	sections, each:
//	  [4 bytes little-endian site]
//	  [4 bytes little-endian record count]
//	  [count x 16-byte records: epoch u32 | tag u32 | mask u64, LE]
//	trailer:
//	  [4 bytes CRC32-Castagnoli of everything before it]
//
// Fixed-width records make the producer encode a pair of stores per
// reading and let the consumer decode without copying: a BatchSection is a
// view over the frame's bytes, so readings go straight from the network
// buffer into the ingest shards. The framing follows the WAL record codec
// above: torn frames (cut short mid-write) are distinguishable from
// corrupt ones, and no length or count from the wire is trusted before it
// is checked against the bytes actually present.
package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"rfidtrack/internal/model"
)

// FrameMagic identifies (and versions) a binary batch frame: "RFB1" as a
// little-endian uint32. An incompatible future layout gets a new magic.
const FrameMagic = uint32('R') | uint32('F')<<8 | uint32('B')<<16 | uint32('1')<<24

const (
	// frameHeaderLen is the fixed frame prefix: magic, frame length,
	// section count, record count.
	frameHeaderLen = 16
	// frameSectionLen is one section header: site + record count.
	frameSectionLen = 8
	// FrameRecordLen is one fixed-width reading record.
	FrameRecordLen = 16
	// frameTrailerLen is the CRC32-Castagnoli trailer.
	frameTrailerLen = 4
)

// MaxFrameBytes bounds one frame's total length (~500k readings). It
// matches the HTTP body cap of the JSON batch path: a larger frame is a
// malformed producer, not a bigger buffer.
const MaxFrameBytes = 8 << 20

// ErrFramePartial reports a frame cut short: fewer bytes than its header
// (or its declared length) requires. A streaming reader that buffered only
// a prefix retries with more bytes; a file ends cleanly at the last whole
// frame.
var ErrFramePartial = errors.New("stream: partial batch frame")

// ErrFrameCorrupt reports a complete frame whose bytes are not a valid
// batch frame: bad magic, implausible length, CRC mismatch, or section
// counts that do not tile the body exactly.
var ErrFrameCorrupt = errors.New("stream: corrupt batch frame")

// frameCastagnoli is the CRC32-Castagnoli table (hardware-accelerated on
// amd64/arm64), shared by the encoder and decoder.
var frameCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// BatchSection is one site's records inside a decoded frame: a zero-copy
// view over the frame's bytes. It is only valid while the frame buffer is.
type BatchSection struct {
	// Site is the section's site index as sent on the wire.
	Site int
	recs []byte // Count x FrameRecordLen record bytes
	n    int
}

// Len returns the number of records in the section.
func (s BatchSection) Len() int { return s.n }

// At decodes record i. It performs no validation beyond the fixed layout:
// epochs and tags are returned as signed values exactly as sent, and the
// ingest layer's validation decides what is acceptable.
func (s BatchSection) At(i int) (t model.Epoch, tag model.TagID, mask model.Mask) {
	rec := s.recs[i*FrameRecordLen : i*FrameRecordLen+FrameRecordLen]
	t = model.Epoch(int32(binary.LittleEndian.Uint32(rec)))
	tag = model.TagID(int32(binary.LittleEndian.Uint32(rec[4:])))
	mask = model.Mask(binary.LittleEndian.Uint64(rec[8:]))
	return
}

// Raw returns the section's record bytes — Len() x FrameRecordLen, laid
// out exactly as documented in the package comment. Like the section
// itself it aliases the frame buffer and is only valid while that is. It
// exists for zero-copy consumers (the ingest fast path) that reinterpret
// whole records in place instead of decoding them one field at a time.
func (s BatchSection) Raw() []byte { return s.recs }

// FrameReading is one decoded record, the materialized form of a section
// entry for callers that want a slice instead of a view.
type FrameReading struct {
	T    model.Epoch
	Tag  model.TagID
	Mask model.Mask
}

// AppendTo appends the section's records to dst, growing it with the
// shared decode-allocation clamp (model.DecodeCap): a hostile count never
// preallocates more than the clamp, it only makes append grow the slice as
// real records materialize.
func (s BatchSection) AppendTo(dst []FrameReading) []FrameReading {
	if dst == nil {
		dst = make([]FrameReading, 0, model.DecodeCap(uint64(s.n)))
	}
	for i := 0; i < s.n; i++ {
		t, tag, mask := s.At(i)
		dst = append(dst, FrameReading{T: t, Tag: tag, Mask: mask})
	}
	return dst
}

// FrameBuilder incrementally encodes one batch frame. The zero value is
// ready to use; Reset reuses the backing buffer, so a producer in steady
// state allocates nothing per frame:
//
//	b.Reset()
//	b.BeginSection(site)
//	for ... { b.Add(t, tag, mask) }
//	frame := b.Finish()
type FrameBuilder struct {
	buf      []byte
	sections int
	records  int
	secOff   int // offset of the open section's header, -1 when none
	finished bool
}

// Reset discards the frame under construction, keeping the buffer.
func (b *FrameBuilder) Reset() {
	b.buf = b.buf[:0]
	b.sections = 0
	b.records = 0
	b.secOff = -1
	b.finished = false
}

// start lazily writes the frame header placeholder.
func (b *FrameBuilder) start() {
	if len(b.buf) != 0 {
		return
	}
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[:], FrameMagic)
	b.buf = append(b.buf, hdr[:]...)
	b.secOff = -1
}

// BeginSection opens a new per-site section. Sections may repeat a site;
// the consumer processes them in order.
func (b *FrameBuilder) BeginSection(site int) {
	b.start()
	var sec [frameSectionLen]byte
	binary.LittleEndian.PutUint32(sec[:], uint32(site))
	b.secOff = len(b.buf)
	b.buf = append(b.buf, sec[:]...)
	b.sections++
}

// Add appends one reading record to the open section. Calling Add without
// an open section panics: it is a producer programming error, not a wire
// condition.
func (b *FrameBuilder) Add(t model.Epoch, tag model.TagID, mask model.Mask) {
	if b.secOff < 0 {
		panic("stream: FrameBuilder.Add without BeginSection")
	}
	var rec [FrameRecordLen]byte
	binary.LittleEndian.PutUint32(rec[:], uint32(t))
	binary.LittleEndian.PutUint32(rec[4:], uint32(tag))
	binary.LittleEndian.PutUint64(rec[8:], uint64(mask))
	b.buf = append(b.buf, rec[:]...)
	binary.LittleEndian.PutUint32(b.buf[b.secOff+4:],
		binary.LittleEndian.Uint32(b.buf[b.secOff+4:])+1)
	b.records++
}

// AddRecords appends pre-encoded records — a multiple of FrameRecordLen
// bytes in the wire layout — to the open section in one append. It is the
// bulk twin of Add for producers that already hold records in wire shape
// (see the ingest client's little-endian fast path). A ragged length or a
// missing BeginSection panics like Add does: both are producer programming
// errors.
func (b *FrameBuilder) AddRecords(raw []byte) {
	if b.secOff < 0 {
		panic("stream: FrameBuilder.AddRecords without BeginSection")
	}
	if len(raw)%FrameRecordLen != 0 {
		panic("stream: FrameBuilder.AddRecords with ragged record bytes")
	}
	n := len(raw) / FrameRecordLen
	b.buf = append(b.buf, raw...)
	binary.LittleEndian.PutUint32(b.buf[b.secOff+4:],
		binary.LittleEndian.Uint32(b.buf[b.secOff+4:])+uint32(n))
	b.records += n
}

// Len returns the encoded size the frame has reached so far (header and
// trailer included), letting a producer cut a frame before it exceeds
// MaxFrameBytes.
func (b *FrameBuilder) Len() int {
	if len(b.buf) == 0 {
		return frameHeaderLen + frameTrailerLen
	}
	if b.finished {
		return len(b.buf)
	}
	return len(b.buf) + frameTrailerLen
}

// Records returns the number of records added so far.
func (b *FrameBuilder) Records() int { return b.records }

// Finish patches the header, appends the CRC trailer and returns the
// complete frame. The returned slice aliases the builder's buffer: it is
// valid until the next Reset.
func (b *FrameBuilder) Finish() []byte {
	b.start()
	if b.finished {
		panic("stream: FrameBuilder.Finish called twice without Reset")
	}
	b.finished = true
	binary.LittleEndian.PutUint32(b.buf[4:], uint32(len(b.buf)+frameTrailerLen))
	binary.LittleEndian.PutUint32(b.buf[8:], uint32(b.sections))
	binary.LittleEndian.PutUint32(b.buf[12:], uint32(b.records))
	crc := crc32.Checksum(b.buf, frameCastagnoli)
	var tr [frameTrailerLen]byte
	binary.LittleEndian.PutUint32(tr[:], crc)
	b.buf = append(b.buf, tr[:]...)
	return b.buf
}

// AppendBatchFrame appends a single-section frame for site to dst and
// returns the extended slice: the one-shot convenience over FrameBuilder.
func AppendBatchFrame(dst []byte, site int, rs []FrameReading) []byte {
	start := len(dst)
	var hdr [frameHeaderLen + frameSectionLen]byte
	binary.LittleEndian.PutUint32(hdr[:], FrameMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(frameHeaderLen+frameSectionLen+len(rs)*FrameRecordLen+frameTrailerLen))
	binary.LittleEndian.PutUint32(hdr[8:], 1)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(rs)))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(site))
	binary.LittleEndian.PutUint32(hdr[20:], uint32(len(rs)))
	dst = append(dst, hdr[:]...)
	for _, r := range rs {
		var rec [FrameRecordLen]byte
		binary.LittleEndian.PutUint32(rec[:], uint32(r.T))
		binary.LittleEndian.PutUint32(rec[4:], uint32(r.Tag))
		binary.LittleEndian.PutUint64(rec[8:], uint64(r.Mask))
		dst = append(dst, rec[:]...)
	}
	crc := crc32.Checksum(dst[start:], frameCastagnoli)
	var tr [frameTrailerLen]byte
	binary.LittleEndian.PutUint32(tr[:], crc)
	return append(dst, tr[:]...)
}

// DecodeBatchFrame decodes the first frame in b, calling emit for each
// section in wire order, and returns the frame's total length in bytes.
// Sections are zero-copy views into b: they are valid only during emit.
//
// A buffer shorter than the frame's declared length yields ErrFramePartial;
// a complete frame that fails validation yields ErrFrameCorrupt. Every
// count is validated against the bytes present before any section is
// emitted, and emit's own error aborts the decode and is returned verbatim
// — by then the CRC has already vouched for the whole frame.
func DecodeBatchFrame(b []byte, emit func(BatchSection) error) (n int, err error) {
	if len(b) < frameHeaderLen {
		return 0, ErrFramePartial
	}
	if magic := binary.LittleEndian.Uint32(b); magic != FrameMagic {
		return 0, fmt.Errorf("%w: bad magic %#x", ErrFrameCorrupt, magic)
	}
	frameLen := int(binary.LittleEndian.Uint32(b[4:]))
	if frameLen < frameHeaderLen+frameTrailerLen || frameLen > MaxFrameBytes {
		return 0, fmt.Errorf("%w: implausible frame length %d", ErrFrameCorrupt, frameLen)
	}
	if len(b) < frameLen {
		return 0, ErrFramePartial
	}
	frame := b[:frameLen]
	wantCRC := binary.LittleEndian.Uint32(frame[frameLen-frameTrailerLen:])
	if crc := crc32.Checksum(frame[:frameLen-frameTrailerLen], frameCastagnoli); crc != wantCRC {
		return 0, fmt.Errorf("%w: CRC mismatch", ErrFrameCorrupt)
	}
	sections := int(binary.LittleEndian.Uint32(frame[8:]))
	records := int(binary.LittleEndian.Uint32(frame[12:]))
	body := frame[frameHeaderLen : frameLen-frameTrailerLen]

	// Validate that the declared sections tile the body exactly before
	// emitting anything: a CRC-valid frame from a buggy producer must be
	// rejected whole, not half-applied.
	if sections > len(body)/frameSectionLen || records > model.MaxDecodeElems {
		return 0, fmt.Errorf("%w: %d sections / %d records exceed body", ErrFrameCorrupt, sections, records)
	}
	rest := body
	total := 0
	for i := 0; i < sections; i++ {
		if len(rest) < frameSectionLen {
			return 0, fmt.Errorf("%w: truncated section %d header", ErrFrameCorrupt, i)
		}
		count := int(binary.LittleEndian.Uint32(rest[4:]))
		recBytes := len(rest) - frameSectionLen
		if count > recBytes/FrameRecordLen {
			return 0, fmt.Errorf("%w: section %d count %d exceeds body", ErrFrameCorrupt, i, count)
		}
		rest = rest[frameSectionLen+count*FrameRecordLen:]
		total += count
	}
	if len(rest) != 0 {
		return 0, fmt.Errorf("%w: %d trailing body bytes", ErrFrameCorrupt, len(rest))
	}
	if total != records {
		return 0, fmt.Errorf("%w: header declares %d records, sections carry %d", ErrFrameCorrupt, records, total)
	}

	rest = body
	for i := 0; i < sections; i++ {
		site := int(int32(binary.LittleEndian.Uint32(rest)))
		count := int(binary.LittleEndian.Uint32(rest[4:]))
		sec := BatchSection{
			Site: site,
			recs: rest[frameSectionLen : frameSectionLen+count*FrameRecordLen],
			n:    count,
		}
		if err := emit(sec); err != nil {
			return 0, err
		}
		rest = rest[frameSectionLen+count*FrameRecordLen:]
	}
	return frameLen, nil
}

// ScanBatchFrames walks a buffer of concatenated frames (e.g. a capture
// file written by rfidsim -bin -o), calling emit per section, and returns
// the byte offset of the first invalid frame plus the error that stopped
// the scan (nil when the buffer ends exactly on a frame boundary) — the
// same contract as ScanWAL.
func ScanBatchFrames(b []byte, emit func(BatchSection) error) (valid int, err error) {
	off := 0
	for off < len(b) {
		n, err := DecodeBatchFrame(b[off:], emit)
		if err != nil {
			return off, err
		}
		off += n
	}
	return off, nil
}

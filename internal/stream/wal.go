// The write-ahead-log record codec: the durable wire format of the online
// runtime's accepted-event log (internal/wal). Each record is one accepted
// reading, departure or inbound migration payload, framed as
//
//	[4 bytes little-endian payload length]
//	[4 bytes IEEE CRC32 of the payload]
//	[payload: kind byte + uvarint fields]
//
// so a reader can walk a log byte-exactly, detect a torn tail (a frame cut
// short by a crash mid-write) and stop cleanly at the last valid record,
// and detect corruption (a frame whose bytes no longer match their CRC)
// without ever trusting a length or count from disk. The codec follows the
// same hardening stance as the migration codecs in this package and
// internal/rfinfer: implausible lengths are rejected before any allocation.
package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"rfidtrack/internal/model"
)

// WAL record kinds.
const (
	// WALReading is one accepted reader observation: Site, T, Tag, Mask.
	WALReading byte = 1
	// WALDepart is one accepted departure event: Object, From, To, At.
	WALDepart byte = 2
	// WALMigration is one inbound migration payload accepted from a peer:
	// the departure identity (Object, From, To, At) followed by the opaque
	// payload bytes. Logging the payload before acknowledging the peer's
	// POST is what makes at-least-once migration delivery survive a crash
	// of the receiving daemon (see internal/serve's peer layer).
	WALMigration byte = 3
	// WALAlert is one published continuous-query alert: Site, Tag, the
	// episode span (T = first epoch, At = last), the pattern key and the
	// collected measurement values. The delivery tier appends one per
	// published alert, which is what lets a consumer's cursor survive a
	// daemon kill -9: recovery restores the snapshot's alert-log prefix
	// and replays these records for the post-snapshot tail, so resumed
	// sequence numbers name the same alerts they did before the crash.
	WALAlert byte = 4
)

// walFrameHeader is the fixed frame prefix: payload length + CRC32.
const walFrameHeader = 8

// MaxWALPayload bounds a reading or departure record's payload. Real
// records are under 30 bytes; a length beyond this is a corrupt frame, not
// a bigger buffer.
const MaxWALPayload = 1 << 12

// MaxWALMigrationPayload bounds a migration record's payload: the framed
// departure fields plus a migration payload up to MaxMigrationPayload.
const MaxWALMigrationPayload = MaxMigrationPayload + 64

// MaxWALAlertPayload bounds an alert record's payload: the framed fields,
// a pattern key up to MaxAlertPatternKey and the episode's measurement
// values. Real alerts carry a handful of floats per Δ-interval of
// exposure; a length beyond this is a corrupt frame.
const MaxWALAlertPayload = 1 << 16

// MaxAlertPatternKey bounds an alert record's pattern-key string.
const MaxAlertPatternKey = 128

// ErrWALPartial reports a frame cut short at the end of a log: the clean
// torn-tail signature of a crash mid-append. Everything before it is valid;
// recovery truncates here and continues.
var ErrWALPartial = errors.New("stream: partial WAL frame")

// ErrWALCorrupt reports a complete frame whose bytes are not a valid
// record: CRC mismatch, implausible length, unknown kind, or malformed
// varints. Recovery treats it like a torn tail — the log is valid up to the
// previous record — but callers may want to surface it louder, since it
// means bytes rotted in place rather than a write being interrupted.
var ErrWALCorrupt = errors.New("stream: corrupt WAL frame")

// WALRecord is one accepted event in the durable log. Kind selects which
// field group is meaningful.
type WALRecord struct {
	// Kind is WALReading, WALDepart or WALMigration.
	Kind byte

	// Reading fields: the observing site, epoch, tag and reader mask.
	Site int
	T    model.Epoch
	Tag  model.TagID
	Mask model.Mask

	// Departure fields: the object and its (from, to, at) transfer.
	// WALMigration records use these for the departure identity too.
	Object   model.TagID
	From, To int
	At       model.Epoch

	// Payload is the opaque migration payload of a WALMigration record
	// (nil for the other kinds, and for an empty payload).
	Payload []byte

	// Alert fields of a WALAlert record: the pattern key that fired and
	// the episode's measurement values. WALAlert reuses Site, Tag, T (the
	// episode's first epoch) and At (its last).
	Pattern string
	Values  []float64
}

// AppendWALRecord appends the framed encoding of rec to dst and returns
// the extended slice. It never fails: every WALRecord value encodes.
func AppendWALRecord(dst []byte, rec WALRecord) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	dst = append(dst, rec.Kind)
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(buf[:], v)
		dst = append(dst, buf[:n]...)
	}
	switch rec.Kind {
	case WALDepart:
		put(uint64(uint32(rec.Object)))
		put(uint64(uint32(rec.From)))
		put(uint64(uint32(rec.To)))
		put(uint64(uint32(rec.At)))
	case WALMigration:
		put(uint64(uint32(rec.Object)))
		put(uint64(uint32(rec.From)))
		put(uint64(uint32(rec.To)))
		put(uint64(uint32(rec.At)))
		dst = append(dst, rec.Payload...)
	case WALAlert:
		put(uint64(uint32(rec.Site)))
		put(uint64(uint32(rec.Tag)))
		put(uint64(uint32(rec.T)))
		put(uint64(uint32(rec.At)))
		put(uint64(len(rec.Pattern)))
		dst = append(dst, rec.Pattern...)
		put(uint64(len(rec.Values)))
		for _, v := range rec.Values {
			var fb [8]byte
			binary.LittleEndian.PutUint64(fb[:], math.Float64bits(v))
			dst = append(dst, fb[:]...)
		}
	default: // WALReading, and the encoder's fallback for unknown kinds
		put(uint64(uint32(rec.Site)))
		put(uint64(uint32(rec.T)))
		put(uint64(uint32(rec.Tag)))
		put(uint64(rec.Mask))
	}
	payload := dst[start+walFrameHeader:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.ChecksumIEEE(payload))
	return dst
}

// DecodeWALRecord decodes the first framed record in b, returning the
// record and the number of bytes consumed. A frame extending past the end
// of b yields ErrWALPartial (the torn-tail case); a complete frame that
// fails validation yields ErrWALCorrupt. On error n is 0.
func DecodeWALRecord(b []byte) (rec WALRecord, n int, err error) {
	if len(b) < walFrameHeader {
		return rec, 0, ErrWALPartial
	}
	length := binary.LittleEndian.Uint32(b)
	if length == 0 || length > MaxWALMigrationPayload {
		return rec, 0, fmt.Errorf("%w: payload length %d", ErrWALCorrupt, length)
	}
	if len(b) < walFrameHeader+int(length) {
		return rec, 0, ErrWALPartial
	}
	payload := b[walFrameHeader : walFrameHeader+int(length)]
	if crc := binary.LittleEndian.Uint32(b[4:]); crc != crc32.ChecksumIEEE(payload) {
		return rec, 0, fmt.Errorf("%w: CRC mismatch", ErrWALCorrupt)
	}
	rec.Kind = payload[0]
	switch rec.Kind {
	case WALMigration: // bounded by MaxWALMigrationPayload above
	case WALAlert:
		if length > MaxWALAlertPayload {
			return WALRecord{}, 0, fmt.Errorf("%w: payload length %d for kind %d", ErrWALCorrupt, length, rec.Kind)
		}
	default:
		if length > MaxWALPayload {
			return WALRecord{}, 0, fmt.Errorf("%w: payload length %d for kind %d", ErrWALCorrupt, length, rec.Kind)
		}
	}
	rest := payload[1:]
	take := func() (uint64, bool) {
		v, k := binary.Uvarint(rest)
		if k <= 0 {
			return 0, false
		}
		rest = rest[k:]
		return v, true
	}
	var fields [4]uint64
	for i := range fields {
		v, ok := take()
		if !ok {
			return WALRecord{}, 0, fmt.Errorf("%w: truncated field %d", ErrWALCorrupt, i)
		}
		fields[i] = v
	}
	if rec.Kind != WALMigration && rec.Kind != WALAlert && len(rest) != 0 {
		return WALRecord{}, 0, fmt.Errorf("%w: %d trailing payload bytes", ErrWALCorrupt, len(rest))
	}
	switch rec.Kind {
	case WALReading:
		rec.Site = int(int32(fields[0]))
		rec.T = model.Epoch(int32(fields[1]))
		rec.Tag = model.TagID(int32(fields[2]))
		rec.Mask = model.Mask(fields[3])
	case WALDepart:
		rec.Object = model.TagID(int32(fields[0]))
		rec.From = int(int32(fields[1]))
		rec.To = int(int32(fields[2]))
		rec.At = model.Epoch(int32(fields[3]))
	case WALMigration:
		rec.Object = model.TagID(int32(fields[0]))
		rec.From = int(int32(fields[1]))
		rec.To = int(int32(fields[2]))
		rec.At = model.Epoch(int32(fields[3]))
		// The remaining bytes are the opaque migration payload, copied out
		// of the scan buffer: replay deposits these into long-lived state,
		// so a view into the log buffer would not be safe to retain.
		if len(rest) > 0 {
			rec.Payload = append([]byte(nil), rest...)
		}
	case WALAlert:
		rec.Site = int(int32(fields[0]))
		rec.Tag = model.TagID(int32(fields[1]))
		rec.T = model.Epoch(int32(fields[2]))
		rec.At = model.Epoch(int32(fields[3]))
		plen, ok := take()
		if !ok || plen > MaxAlertPatternKey || plen > uint64(len(rest)) {
			return WALRecord{}, 0, fmt.Errorf("%w: alert pattern length", ErrWALCorrupt)
		}
		// Copied out of the scan buffer like the migration payload: the
		// restored alert log outlives the replay.
		rec.Pattern = string(rest[:plen])
		rest = rest[plen:]
		nvals, ok := take()
		if !ok || nvals > uint64(len(rest))/8 || int(nvals)*8 != len(rest) {
			return WALRecord{}, 0, fmt.Errorf("%w: alert value count", ErrWALCorrupt)
		}
		if nvals > 0 {
			rec.Values = make([]float64, nvals)
			for i := range rec.Values {
				rec.Values[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[i*8:]))
			}
		}
	default:
		return WALRecord{}, 0, fmt.Errorf("%w: unknown record kind %d", ErrWALCorrupt, rec.Kind)
	}
	return rec, walFrameHeader + int(length), nil
}

// ScanWAL walks a log buffer record by record, calling emit for each valid
// record, and returns the byte offset of the first invalid frame (the
// clean-truncation point) plus the error that stopped the scan (nil when
// the buffer ends exactly on a record boundary). A non-nil error is always
// ErrWALPartial or ErrWALCorrupt (possibly wrapped); emit's own error
// aborts the scan and is returned verbatim with the current offset.
func ScanWAL(b []byte, emit func(WALRecord) error) (valid int, err error) {
	off := 0
	for off < len(b) {
		rec, n, err := DecodeWALRecord(b[off:])
		if err != nil {
			return off, err
		}
		if err := emit(rec); err != nil {
			return off, err
		}
		off += n
	}
	return off, nil
}

package stream

import (
	"errors"
	"reflect"
	"testing"

	"rfidtrack/internal/model"
)

// migSamples is a spread of representative migration transfers, including
// the empty-payload frame (a MigrateNone transfer carrying query state is
// never empty, so empty means "pure routing notification").
func migSamples() []MigrationFrame {
	return []MigrationFrame{
		{Object: 0, From: 0, To: 1, At: 0},
		{Object: 41, From: 3, To: 0, At: 299, Payload: []byte{1}},
		{Object: 1 << 20, From: 14, To: 15, At: 1 << 29,
			Payload: []byte{0xde, 0xad, 0xbe, 0xef, 0, 1, 2, 3, 4, 5, 6, 7}},
	}
}

// TestMigrationFrameRoundTrip pins encode -> decode identity plus the
// consumed-byte accounting a stream reader depends on.
func TestMigrationFrameRoundTrip(t *testing.T) {
	var buf []byte
	var ends []int
	for _, mf := range migSamples() {
		buf = AppendMigrationFrame(buf, mf.Object, mf.From, mf.To, mf.At, mf.Payload)
		ends = append(ends, len(buf))
	}
	off := 0
	for i, want := range migSamples() {
		got, n, err := DecodeMigrationFrame(buf[off:])
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		// Payload is a view into buf; compare by value.
		if got.Object != want.Object || got.From != want.From || got.To != want.To || got.At != want.At {
			t.Fatalf("frame %d: decoded %+v, want %+v", i, got, want)
		}
		if !reflect.DeepEqual(got.Payload, want.Payload) {
			t.Fatalf("frame %d: payload %v, want %v", i, got.Payload, want.Payload)
		}
		off += n
		if off != ends[i] {
			t.Fatalf("frame %d: consumed through %d, want %d", i, off, ends[i])
		}
	}
	if off != len(buf) {
		t.Fatalf("consumed %d of %d bytes", off, len(buf))
	}
}

// TestMigrationFramePartial pins the torn-frame contract: any prefix of a
// valid frame yields ErrFramePartial, never a decode and never corruption
// (the header, magic included, survives every cut that keeps it whole).
func TestMigrationFramePartial(t *testing.T) {
	full := AppendMigrationFrame(nil, 7, 1, 2, 600, []byte{9, 8, 7})
	for cut := 0; cut < len(full); cut++ {
		_, n, err := DecodeMigrationFrame(full[:cut])
		if !errors.Is(err, ErrFramePartial) {
			t.Fatalf("cut at %d: err = %v, want ErrFramePartial", cut, err)
		}
		if n != 0 {
			t.Fatalf("cut at %d: consumed %d bytes on error", cut, n)
		}
	}
}

// TestMigrationFrameCorruption pins that bit rot anywhere in a complete
// frame is detected — as corruption, or as a partial frame when the flipped
// bit lands in the length field — never silently decoded as different data.
func TestMigrationFrameCorruption(t *testing.T) {
	want := MigrationFrame{Object: 17, From: 2, To: 5, At: 600, Payload: []byte{1, 2, 3}}
	clean := AppendMigrationFrame(nil, want.Object, want.From, want.To, want.At, want.Payload)
	for i := range clean {
		for _, bit := range []byte{0x01, 0x80} {
			dirty := append([]byte(nil), clean...)
			dirty[i] ^= bit
			got, _, err := DecodeMigrationFrame(dirty)
			if err == nil {
				if got.Object != want.Object || got.From != want.From ||
					got.To != want.To || got.At != want.At ||
					!reflect.DeepEqual(got.Payload, want.Payload) {
					t.Fatalf("byte %d bit %#x decoded silently as %+v", i, bit, got)
				}
				continue
			}
			if !errors.Is(err, ErrFrameCorrupt) && !errors.Is(err, ErrFramePartial) {
				t.Fatalf("byte %d bit %#x: err = %v, want frame error", i, bit, err)
			}
		}
	}
}

// FuzzDecodeMigrationFrame hardens the frame decoder against arbitrary
// bytes: no panics, no allocation from untrusted lengths, and every
// accepted frame must re-encode byte-identically (the determinism the
// cross-process replay contract leans on when a sender re-sends after a
// crash).
func FuzzDecodeMigrationFrame(f *testing.F) {
	for _, mf := range migSamples() {
		f.Add(AppendMigrationFrame(nil, mf.Object, mf.From, mf.To, mf.At, mf.Payload))
	}
	f.Add([]byte{})
	f.Add([]byte("RFM1"))
	f.Fuzz(func(t *testing.T, b []byte) {
		mf, n, err := DecodeMigrationFrame(b)
		if err != nil {
			if n != 0 {
				t.Fatalf("error %v consumed %d bytes", err, n)
			}
			if !errors.Is(err, ErrFramePartial) && !errors.Is(err, ErrFrameCorrupt) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if n < migFrameHeaderLen+migFrameTrailerLen || n > len(b) {
			t.Fatalf("consumed %d bytes of %d", n, len(b))
		}
		again := AppendMigrationFrame(nil, mf.Object, mf.From, mf.To, mf.At, mf.Payload)
		if !reflect.DeepEqual(again, b[:n]) {
			t.Fatalf("re-encode diverged from accepted frame")
		}
	})
}

var benchMigFrameSink model.TagID

// BenchmarkMigrationWire measures the round trip a migration payload takes
// across the wire codec: frame encode plus decode of a representative
// payload size (a MigrateReadings transfer with recent history).
func BenchmarkMigrationWire(b *testing.B) {
	payload := make([]byte, 2048)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	buf := make([]byte, 0, migFrameHeaderLen+len(payload)+migFrameTrailerLen)
	b.SetBytes(int64(migFrameHeaderLen + len(payload) + migFrameTrailerLen))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendMigrationFrame(buf[:0], 41, 3, 9, model.Epoch(i), payload)
		mf, _, err := DecodeMigrationFrame(buf)
		if err != nil {
			b.Fatal(err)
		}
		benchMigFrameSink = mf.Object
	}
}

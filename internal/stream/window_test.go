package stream

import (
	"math"
	"testing"
	"testing/quick"

	"rfidtrack/internal/model"
)

func TestSlidingWindowEviction(t *testing.T) {
	w := NewSlidingWindow(10, func(tu Tuple) int64 { return int64(tu.Tag) })
	for _, e := range []model.Epoch{0, 5, 9, 12} {
		w.Push(Tuple{Tag: 1, T: e, Temp: float64(e)})
	}
	got := w.Contents(1)
	// Range 10 relative to newest (12): epochs 0 evicted (0+10 <= 12),
	// 5, 9, 12 remain.
	if len(got) != 3 || got[0].T != 5 {
		t.Fatalf("contents = %v", got)
	}
	if w.Contents(9) != nil {
		t.Fatal("phantom partition")
	}
}

func TestSlidingWindowPartitions(t *testing.T) {
	w := NewSlidingWindow(100, func(tu Tuple) int64 { return int64(tu.Tag) })
	w.Push(Tuple{Tag: 1, T: 0})
	w.Push(Tuple{Tag: 2, T: 0})
	if len(w.Contents(1)) != 1 || len(w.Contents(2)) != 1 {
		t.Fatal("partitions mixed")
	}
}

func TestAggregates(t *testing.T) {
	for _, tc := range []struct {
		fn   string
		want float64
	}{
		{"count", 3}, {"sum", 60}, {"min", 10}, {"max", 30}, {"avg", 20},
	} {
		var got []Tuple
		agg := &Aggregate{
			Window: NewSlidingWindow(100, func(tu Tuple) int64 { return int64(tu.Tag) }),
			Fn:     tc.fn,
			Out:    collect(&got),
		}
		for i, v := range []float64{10, 20, 30} {
			agg.Push(Tuple{Tag: 1, T: model.Epoch(i), Temp: v})
		}
		last := got[len(got)-1]
		if math.Abs(last.Temp-tc.want) > 1e-12 {
			t.Errorf("%s = %v, want %v", tc.fn, last.Temp, tc.want)
		}
	}
}

func TestAggregateWindowed(t *testing.T) {
	var got []Tuple
	agg := &Aggregate{
		Window: NewSlidingWindow(10, func(tu Tuple) int64 { return int64(tu.Tag) }),
		Fn:     "avg",
		Out:    collect(&got),
	}
	agg.Push(Tuple{Tag: 1, T: 0, Temp: 100})
	agg.Push(Tuple{Tag: 1, T: 20, Temp: 10}) // first tuple evicted
	if got[len(got)-1].Temp != 10 {
		t.Fatalf("windowed avg = %v", got[len(got)-1].Temp)
	}
}

// TestWindowInvariantProperty: contents are always within Range of the
// newest tuple and in non-decreasing time order.
func TestWindowInvariantProperty(t *testing.T) {
	f := func(epochs []uint16) bool {
		w := NewSlidingWindow(50, func(tu Tuple) int64 { return 0 })
		var newest model.Epoch = -1
		prev := model.Epoch(0)
		for _, e := range epochs {
			// Streams are time-ordered.
			te := prev + model.Epoch(e%20)
			prev = te
			w.Push(Tuple{T: te})
			if te > newest {
				newest = te
			}
			last := model.Epoch(-1)
			for _, tu := range w.Contents(0) {
				if tu.T+50 <= newest {
					return false // stale tuple survived
				}
				if tu.T < last {
					return false // order broken
				}
				last = tu.T
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUnion(t *testing.T) {
	var out []Tuple
	u := &Union{Out: collect(&out)}
	u.Push(Tuple{Tag: 1})
	u.Push(Tuple{Tag: 2})
	if len(out) != 2 {
		t.Fatalf("out = %v", out)
	}
}

func TestAggregateNoOut(t *testing.T) {
	agg := &Aggregate{
		Window: NewSlidingWindow(10, func(tu Tuple) int64 { return 0 }),
		Fn:     "avg",
	}
	// Must not panic without a sink.
	agg.Push(Tuple{T: 0, Temp: 1})
}

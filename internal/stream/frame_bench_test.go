package stream

import (
	"testing"

	"rfidtrack/internal/model"
)

// benchFrame builds one 4-section, 2048-record frame — the shape a
// saturating producer ships.
func benchFrame(b *testing.B) []byte {
	b.Helper()
	var fb FrameBuilder
	fb.Reset()
	for site := 0; site < 4; site++ {
		fb.BeginSection(site)
		for i := 0; i < 512; i++ {
			fb.Add(model.Epoch(i), model.TagID(i%97), model.Mask(1+i%7))
		}
	}
	return append([]byte(nil), fb.Finish()...)
}

// BenchmarkEncodeBatchFrame measures the producer-side cost of building a
// frame with a reused FrameBuilder, per record.
func BenchmarkEncodeBatchFrame(b *testing.B) {
	var fb FrameBuilder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += 2048 {
		fb.Reset()
		for site := 0; site < 4; site++ {
			fb.BeginSection(site)
			for j := 0; j < 512; j++ {
				fb.Add(model.Epoch(j), model.TagID(j%97), model.Mask(1+j%7))
			}
		}
		if fb.Finish() == nil {
			b.Fatal("empty frame")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkDecodeBatchFrame measures the consumer-side structural checks,
// CRC and zero-copy record iteration, per record — the wire protocol's own
// ceiling, independent of what the server does with each reading.
func BenchmarkDecodeBatchFrame(b *testing.B) {
	frame := benchFrame(b)
	var sink model.Mask
	b.SetBytes(int64(len(frame)) / 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += 2048 {
		_, err := DecodeBatchFrame(frame, func(sec BatchSection) error {
			for j := 0; j < sec.Len(); j++ {
				_, _, m := sec.At(j)
				sink ^= m
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
	_ = sink
}

// The replication frame codec: the wire format of the WAL shipping
// stream a warm standby tails (POST /repl/subscribe). One RFS1 frame
// carries one unit of the primary's durable state — a byte range of a WAL
// segment, a chunk of a snapshot file, the manifest commit point, or the
// primary's status heartbeat:
//
//	header (28 bytes):
//	  [4 bytes magic "RFS1"]
//	  [4 bytes little-endian frame length, header and trailer included]
//	  [4 bytes little-endian kind]
//	  [4 bytes little-endian site]  (meaning varies by kind; see constants)
//	  [4 bytes little-endian gen]
//	  [8 bytes little-endian offset]
//	body:
//	  [payload bytes: raw segment or snapshot bytes, opaque here]
//	trailer:
//	  [4 bytes CRC32-Castagnoli of everything before it]
//
// The framing follows RFM1: torn frames are distinguishable from corrupt
// ones (ErrFramePartial vs ErrFrameCorrupt), decode yields a zero-copy
// payload view, and no length from the wire is trusted before it is
// checked against the bytes actually present. The payload bytes are not
// interpreted — the follower writes them verbatim and the WAL's own record
// CRCs vouch for their content at recovery time — so this layer only
// guarantees that the bytes that arrive are the bytes that were sent,
// addressed to the right file and offset.
package stream

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// ReplMagic identifies (and versions) a replication frame: "RFS1" as a
// little-endian uint32. An incompatible future layout gets a new magic.
const ReplMagic = uint32('R') | uint32('F')<<8 | uint32('S')<<16 | uint32('1')<<24

// Replication frame kinds. The Site/Gen/Off header fields are overloaded
// per kind; the payload is raw bytes for the chunk kinds and empty or
// fixed-layout for the control kinds.
const (
	// ReplSegment ships a byte range of one WAL segment: Site is the
	// segment's site code (>= 0 for reading segments, -1/-2/-3 for the
	// departure/migration/alert segments), Gen its generation, Off the file
	// offset the payload starts at.
	ReplSegment = 1
	// ReplSnapshot ships a byte range of a snapshot file: Gen is the
	// snapshot's boundary epoch (the file name derives from it), Off the
	// file offset, and Site is 1 on the final chunk (the follower then
	// fsyncs and renames the temp file into place) and 0 otherwise.
	ReplSnapshot = 2
	// ReplManifest commits the follower's manifest: Gen is the new segment
	// generation, Off the snapshot boundary epoch, and Site is 1 when a
	// snapshot is named (the one ReplSnapshot chunks shipped) and 0 before
	// the first snapshot. It is always the last state-bearing frame of a
	// batch: the follower fsyncs everything shipped before it, then commits.
	ReplManifest = 3
	// ReplTruncate cuts a follower segment back to Off bytes: Site and Gen
	// address the segment. Sent when the follower reports an offset past the
	// primary's file (the primary recovered and truncated a torn tail the
	// follower had already shipped).
	ReplTruncate = 4
	// ReplStatus is the primary's heartbeat, always the final frame of a
	// response: Off is the primary's gossip fence epoch, and the payload is
	// 16 bytes — little-endian int64 stream time then int64 appended WAL
	// bytes. Site and Gen are unused.
	ReplStatus = 5
)

const (
	// replFrameHeaderLen is the fixed frame prefix: magic, frame length,
	// kind, site, gen, offset.
	replFrameHeaderLen = 28
	// replFrameTrailerLen is the CRC32-Castagnoli trailer.
	replFrameTrailerLen = 4
)

// MaxReplPayload bounds one replication frame's payload. Shippers chunk
// files well below this (see internal/wal); the bound exists so a hostile
// length can never size a buffer.
const MaxReplPayload = 1 << 22

// ReplStatusLen is the fixed payload length of a ReplStatus frame.
const ReplStatusLen = 16

// ReplFrame is one decoded replication frame. Payload is a view into the
// decode buffer — valid only while that buffer is.
type ReplFrame struct {
	// Kind is one of the Repl* constants.
	Kind int
	// Site, Gen and Off are the kind-dependent addressing fields; see the
	// kind constants for their meaning.
	Site, Gen int
	Off       int64
	// Payload is the raw shipped bytes, opaque at this layer.
	Payload []byte
}

// AppendReplFrame appends the framed encoding of one replication unit to
// dst and returns the extended slice.
func AppendReplFrame(dst []byte, kind, site, gen int, off int64, payload []byte) []byte {
	start := len(dst)
	var hdr [replFrameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[:], ReplMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(replFrameHeaderLen+len(payload)+replFrameTrailerLen))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(kind))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(site))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(gen))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(off))
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	crc := crc32.Checksum(dst[start:], frameCastagnoli)
	var tr [replFrameTrailerLen]byte
	binary.LittleEndian.PutUint32(tr[:], crc)
	return append(dst, tr[:]...)
}

// DecodeReplFrame decodes the first replication frame in b, returning the
// frame and its total length in bytes. The frame's Payload is a zero-copy
// view into b. A buffer shorter than the frame's declared length yields
// ErrFramePartial; a complete frame that fails validation (bad magic, CRC
// mismatch, unknown kind, malformed control payload) yields
// ErrFrameCorrupt. On error n is 0.
func DecodeReplFrame(b []byte) (rf ReplFrame, n int, err error) {
	if len(b) < replFrameHeaderLen {
		return rf, 0, ErrFramePartial
	}
	if magic := binary.LittleEndian.Uint32(b); magic != ReplMagic {
		return rf, 0, fmt.Errorf("%w: bad replication magic %#x", ErrFrameCorrupt, magic)
	}
	frameLen := int(binary.LittleEndian.Uint32(b[4:]))
	if frameLen < replFrameHeaderLen+replFrameTrailerLen ||
		frameLen > replFrameHeaderLen+MaxReplPayload+replFrameTrailerLen {
		return rf, 0, fmt.Errorf("%w: implausible replication frame length %d", ErrFrameCorrupt, frameLen)
	}
	if len(b) < frameLen {
		return rf, 0, ErrFramePartial
	}
	frame := b[:frameLen]
	wantCRC := binary.LittleEndian.Uint32(frame[frameLen-replFrameTrailerLen:])
	if crc := crc32.Checksum(frame[:frameLen-replFrameTrailerLen], frameCastagnoli); crc != wantCRC {
		return rf, 0, fmt.Errorf("%w: replication frame CRC mismatch", ErrFrameCorrupt)
	}
	rf.Kind = int(int32(binary.LittleEndian.Uint32(frame[8:])))
	rf.Site = int(int32(binary.LittleEndian.Uint32(frame[12:])))
	rf.Gen = int(int32(binary.LittleEndian.Uint32(frame[16:])))
	rf.Off = int64(binary.LittleEndian.Uint64(frame[20:]))
	body := frame[replFrameHeaderLen : frameLen-replFrameTrailerLen]
	if len(body) > 0 {
		rf.Payload = body
	}
	switch rf.Kind {
	case ReplSegment, ReplSnapshot:
		if rf.Off < 0 {
			return ReplFrame{}, 0, fmt.Errorf("%w: negative replication chunk offset %d", ErrFrameCorrupt, rf.Off)
		}
	case ReplManifest:
		if len(body) != 0 {
			return ReplFrame{}, 0, fmt.Errorf("%w: manifest frame carries %d payload bytes", ErrFrameCorrupt, len(body))
		}
	case ReplTruncate:
		if len(body) != 0 || rf.Off < 0 {
			return ReplFrame{}, 0, fmt.Errorf("%w: malformed truncate frame", ErrFrameCorrupt)
		}
	case ReplStatus:
		if len(body) != ReplStatusLen {
			return ReplFrame{}, 0, fmt.Errorf("%w: status frame payload is %d bytes, want %d", ErrFrameCorrupt, len(body), ReplStatusLen)
		}
	default:
		return ReplFrame{}, 0, fmt.Errorf("%w: unknown replication frame kind %d", ErrFrameCorrupt, rf.Kind)
	}
	return rf, frameLen, nil
}

// AppendReplStatus appends a ReplStatus heartbeat frame: the primary's
// gossip fence epoch, its current stream time and its appended WAL bytes.
func AppendReplStatus(dst []byte, fenceEpoch, streamTime, appendedBytes int64) []byte {
	var body [ReplStatusLen]byte
	binary.LittleEndian.PutUint64(body[:], uint64(streamTime))
	binary.LittleEndian.PutUint64(body[8:], uint64(appendedBytes))
	return AppendReplFrame(dst, ReplStatus, 0, 0, fenceEpoch, body[:])
}

// DecodeReplStatus unpacks a ReplStatus frame's fields. The frame must
// have kind ReplStatus (DecodeReplFrame already validated the payload
// length).
func DecodeReplStatus(rf ReplFrame) (fenceEpoch, streamTime, appendedBytes int64) {
	return rf.Off,
		int64(binary.LittleEndian.Uint64(rf.Payload[:8])),
		int64(binary.LittleEndian.Uint64(rf.Payload[8:]))
}

package stream

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"rfidtrack/internal/model"
)

// SeqState is the per-object computation state of a SEQ(A+) pattern block
// (Appendix B): the current automaton position, the minimum values needed
// for future evaluation (the first matched event's time), and the values
// the query returns (the collected measurements). It is the unit of query
// state migration and centroid-based sharing.
type SeqState struct {
	// Started reports whether the partition has matched A[1].
	Started bool
	// Fired reports whether the pattern already emitted for this episode.
	Fired bool
	// First is A[1].time.
	First model.Epoch
	// Last is A[A.len].time, used for gap-based episode resets.
	Last model.Epoch
	// Values are the collected A[].temp measurements the query returns.
	Values []float64
}

// reset clears the episode.
func (s *SeqState) reset() { *s = SeqState{} }

// Match is an emitted pattern match.
type Match struct {
	Tag    model.TagID
	First  model.Epoch
	Last   model.Epoch
	Values []float64
}

// SeqPattern implements "Pattern SEQ(A+) Where A[i].tag_id = A[1].tag_id
// and A[A.len].time > A[1].time + Duration": a per-tag automaton that
// accumulates qualifying events and emits once the episode spans Duration.
//
// MaxGap bounds the spacing between consecutive events of one episode:
// a longer silence (e.g. the object stopped qualifying for the inner query)
// resets the episode. Emit fires at most once per episode.
type SeqPattern struct {
	// Duration is the required span between the first and last event.
	Duration model.Epoch
	// MaxGap resets an episode when consecutive events are further apart.
	// Zero disables gap-based resets (the literal CQL semantics).
	MaxGap model.Epoch
	// MinEvents is the minimum episode length (event count) before the
	// pattern may fire; zero or one means any length.
	MinEvents int
	// OnMatch receives emitted matches.
	OnMatch func(Match)

	parts map[model.TagID]*SeqState
}

// NewSeqPattern returns an empty pattern operator.
func NewSeqPattern(duration, maxGap model.Epoch, onMatch func(Match)) *SeqPattern {
	return &SeqPattern{
		Duration: duration,
		MaxGap:   maxGap,
		OnMatch:  onMatch,
		parts:    make(map[model.TagID]*SeqState),
	}
}

// Push implements Operator.
func (p *SeqPattern) Push(tu Tuple) {
	st := p.parts[tu.Tag]
	if st == nil {
		st = &SeqState{}
		p.parts[tu.Tag] = st
	}
	if st.Started && p.MaxGap > 0 && tu.T-st.Last > p.MaxGap {
		st.reset()
	}
	if !st.Started {
		st.Started = true
		st.First = tu.T
	}
	st.Last = tu.T
	st.Values = append(st.Values, tu.Temp)
	if !st.Fired && st.Last > st.First+p.Duration && len(st.Values) >= p.MinEvents {
		st.Fired = true
		if p.OnMatch != nil {
			p.OnMatch(Match{Tag: tu.Tag, First: st.First, Last: st.Last, Values: st.Values})
		}
	}
}

// Reset clears the episode state of one partition (used when the qualifying
// condition is observed to have stopped holding, e.g. the product went back
// into a freezer).
func (p *SeqPattern) Reset(tag model.TagID) {
	if st, ok := p.parts[tag]; ok {
		st.reset()
	}
}

// State returns the partition state for a tag (nil if none).
func (p *SeqPattern) State(tag model.TagID) *SeqState { return p.parts[tag] }

// SetState installs migrated partition state for a tag.
func (p *SeqPattern) SetState(tag model.TagID, st SeqState) {
	cp := st
	cp.Values = append([]float64(nil), st.Values...)
	p.parts[tag] = &cp
}

// DropState removes a tag's partition state (after it migrated away).
func (p *SeqPattern) DropState(tag model.TagID) { delete(p.parts, tag) }

// Partitions returns the tags with live state, sorted.
func (p *SeqPattern) Partitions() []model.TagID {
	out := make([]model.TagID, 0, len(p.parts))
	for id := range p.parts {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EncodeState serializes one partition's state to the migration wire
// format.
func EncodeState(w io.Writer, st *SeqState) error {
	var flags byte
	if st.Started {
		flags |= 1
	}
	if st.Fired {
		flags |= 2
	}
	var buf [binary.MaxVarintLen64]byte
	write := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := w.Write(buf[:n])
		return err
	}
	if _, err := w.Write([]byte{flags}); err != nil {
		return err
	}
	if err := write(uint64(uint32(st.First))); err != nil {
		return err
	}
	if err := write(uint64(uint32(st.Last))); err != nil {
		return err
	}
	if err := write(uint64(len(st.Values))); err != nil {
		return err
	}
	for _, v := range st.Values {
		if err := write(math.Float64bits(v)); err != nil {
			return err
		}
	}
	return nil
}

// DecodeState reverses EncodeState.
func DecodeState(r io.ByteReader) (SeqState, error) {
	var st SeqState
	flags, err := r.ReadByte()
	if err != nil {
		return st, err
	}
	st.Started = flags&1 != 0
	st.Fired = flags&2 != 0
	read := func() (uint64, error) { return binary.ReadUvarint(r) }
	v, err := read()
	if err != nil {
		return st, err
	}
	st.First = model.Epoch(int32(v))
	if v, err = read(); err != nil {
		return st, err
	}
	st.Last = model.Epoch(int32(v))
	n, err := read()
	if err != nil {
		return st, err
	}
	if n > model.MaxDecodeElems {
		return st, fmt.Errorf("stream: implausible state size %d", n)
	}
	st.Values = make([]float64, 0, model.DecodeCap(n))
	for i := uint64(0); i < n; i++ {
		if v, err = read(); err != nil {
			return st, err
		}
		st.Values = append(st.Values, math.Float64frombits(v))
	}
	return st, nil
}

package stream

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"testing"

	"rfidtrack/internal/model"
)

// frameSections returns a representative multi-site frame payload.
func frameSections() map[int][]FrameReading {
	return map[int][]FrameReading{
		0: {
			{T: 0, Tag: 0, Mask: 1},
			{T: 299, Tag: 41, Mask: 0b1011},
		},
		3: {
			{T: 1<<31 - 1, Tag: 1 << 20, Mask: ^model.Mask(0)},
		},
		7: {}, // empty sections are legal
	}
}

// buildFrame encodes the sample sections (in ascending site order) with a
// FrameBuilder.
func buildFrame(t testing.TB, secs map[int][]FrameReading) []byte {
	t.Helper()
	var b FrameBuilder
	b.Reset()
	for _, site := range []int{0, 3, 7} {
		b.BeginSection(site)
		for _, r := range secs[site] {
			b.Add(r.T, r.Tag, r.Mask)
		}
	}
	return b.Finish()
}

// decodeFrame materializes every section of one frame.
func decodeFrame(b []byte) (map[int][]FrameReading, int, error) {
	got := make(map[int][]FrameReading)
	n, err := DecodeBatchFrame(b, func(s BatchSection) error {
		got[s.Site] = s.AppendTo(got[s.Site])
		if got[s.Site] == nil {
			got[s.Site] = []FrameReading{}
		}
		return nil
	})
	return got, n, err
}

// TestFrameRoundTrip pins encode -> decode identity through both encoders,
// including empty sections and extreme field values.
func TestFrameRoundTrip(t *testing.T) {
	secs := frameSections()
	frame := buildFrame(t, secs)
	got, n, err := decodeFrame(frame)
	if err != nil {
		t.Fatalf("DecodeBatchFrame: %v", err)
	}
	if n != len(frame) {
		t.Fatalf("decode consumed %d of %d bytes", n, len(frame))
	}
	want := map[int][]FrameReading{0: secs[0], 3: secs[3], 7: {}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, want)
	}

	// The one-shot encoder must agree with the builder byte for byte.
	var b FrameBuilder
	b.Reset()
	b.BeginSection(3)
	for _, r := range secs[3] {
		b.Add(r.T, r.Tag, r.Mask)
	}
	if one := AppendBatchFrame(nil, 3, secs[3]); !reflect.DeepEqual(one, b.Finish()) {
		t.Fatalf("AppendBatchFrame and FrameBuilder disagree")
	}
}

// TestFrameBuilderReuse pins the zero-alloc reuse contract: after Reset the
// builder produces an identical frame from the same backing array.
func TestFrameBuilderReuse(t *testing.T) {
	var b FrameBuilder
	encode := func() []byte {
		b.Reset()
		b.BeginSection(2)
		b.Add(10, 20, 3)
		b.Add(11, 21, 4)
		return b.Finish()
	}
	first := append([]byte(nil), encode()...)
	if allocs := testing.AllocsPerRun(100, func() { encode() }); allocs != 0 {
		t.Fatalf("FrameBuilder reuse allocates %v per frame", allocs)
	}
	if !reflect.DeepEqual(encode(), first) {
		t.Fatalf("reused builder produced a different frame")
	}
	if got := b.Records(); got != 2 {
		t.Fatalf("Records() = %d, want 2", got)
	}
	if got := b.Len(); got != len(first) {
		t.Fatalf("Len() = %d, want %d", got, len(first))
	}
}

// TestFrameScan pins ScanBatchFrames over concatenated frames with the
// ScanWAL offset contract.
func TestFrameScan(t *testing.T) {
	secs := frameSections()
	one := buildFrame(t, secs)
	buf := append(append([]byte(nil), one...), one...)
	count := 0
	valid, err := ScanBatchFrames(buf, func(s BatchSection) error { count += s.Len(); return nil })
	if err != nil || valid != len(buf) {
		t.Fatalf("scan: valid=%d err=%v", valid, err)
	}
	if count != 6 {
		t.Fatalf("scanned %d records, want 6", count)
	}
	// A torn second frame stops the scan exactly at the first frame's end.
	valid, err = ScanBatchFrames(buf[:len(one)+7], func(BatchSection) error { return nil })
	if valid != len(one) || !errors.Is(err, ErrFramePartial) {
		t.Fatalf("torn scan: valid=%d err=%v, want %d ErrFramePartial", valid, err, len(one))
	}
}

// TestFrameTornAndCorrupt pins the refusal contract: any prefix decodes as
// partial, and any single flipped bit in a complete frame is refused as
// corrupt (the CRC covers header and body both).
func TestFrameTornAndCorrupt(t *testing.T) {
	frame := buildFrame(t, frameSections())
	for cut := 0; cut < len(frame); cut++ {
		_, _, err := decodeFrame(frame[:cut])
		if !errors.Is(err, ErrFramePartial) && !errors.Is(err, ErrFrameCorrupt) {
			t.Fatalf("cut at %d: err = %v", cut, err)
		}
	}
	for i := range frame {
		dirty := append([]byte(nil), frame...)
		dirty[i] ^= 0x40
		if _, _, err := decodeFrame(dirty); err == nil {
			t.Fatalf("flipped byte %d decoded silently", i)
		}
	}
}

// TestFrameHostileHeaders pins that implausible lengths and counts are
// refused before any record materializes, with the right error class.
func TestFrameHostileHeaders(t *testing.T) {
	patch := func(off int, v uint32) []byte {
		frame := buildFrame(t, frameSections())
		binary.LittleEndian.PutUint32(frame[off:], v)
		// Recompute the CRC so only the patched field is at fault.
		crc := crc32Of(frame[:len(frame)-frameTrailerLen])
		binary.LittleEndian.PutUint32(frame[len(frame)-frameTrailerLen:], crc)
		return frame
	}
	cases := []struct {
		name  string
		frame []byte
		want  error
	}{
		{"bad magic", patch(0, 0xdeadbeef), ErrFrameCorrupt},
		{"oversized frame length", patch(4, MaxFrameBytes+1), ErrFrameCorrupt},
		{"undersized frame length", patch(4, 3), ErrFrameCorrupt},
		{"declared longer than buffer", patch(4, 1<<20), ErrFramePartial},
		{"section count beyond body", patch(8, 1<<30), ErrFrameCorrupt},
		{"record count beyond body", patch(12, 1<<30), ErrFrameCorrupt},
		{"record count mismatch", patch(12, 2), ErrFrameCorrupt},
		{"section record count beyond body", patch(frameHeaderLen+4, 1<<30), ErrFrameCorrupt},
	}
	for _, tc := range cases {
		if _, _, err := decodeFrame(tc.frame); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// crc32Of is the test-side CRC helper (Castagnoli, like the codec).
func crc32Of(b []byte) uint32 {
	return crc32.Checksum(b, frameCastagnoli)
}

// FuzzDecodeBatchFrame hardens the frame decoder against arbitrary bytes:
// it must never panic, never preallocate from an untrusted count beyond
// the model.DecodeCap clamp, classify every rejection as partial or
// corrupt, and decode every accepted frame into sections whose re-encoding
// decodes identically.
func FuzzDecodeBatchFrame(f *testing.F) {
	secs := map[int][]FrameReading{
		0: {{T: 0, Tag: 0, Mask: 1}, {T: 299, Tag: 41, Mask: 0b1011}},
		3: {{T: 1<<31 - 1, Tag: 1 << 20, Mask: ^model.Mask(0)}},
		7: {},
	}
	var b FrameBuilder
	b.Reset()
	for _, site := range []int{0, 3, 7} {
		b.BeginSection(site)
		for _, r := range secs[site] {
			b.Add(r.T, r.Tag, r.Mask)
		}
	}
	f.Add(append([]byte(nil), b.Finish()...))
	f.Add(AppendBatchFrame(nil, 0, nil))
	f.Add(AppendBatchFrame(nil, 2, []FrameReading{{T: -5, Tag: -7, Mask: 0}}))
	f.Add([]byte{})
	f.Add([]byte{'R', 'F', 'B', '1'})
	f.Add([]byte{'R', 'F', 'B', '1', 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, in []byte) {
		var sites []int
		var recs []FrameReading
		n, err := DecodeBatchFrame(in, func(s BatchSection) error {
			sites = append(sites, s.Site)
			recs = s.AppendTo(recs)
			return nil
		})
		if err != nil {
			if n != 0 {
				t.Fatalf("error %v consumed %d bytes", err, n)
			}
			if !errors.Is(err, ErrFramePartial) && !errors.Is(err, ErrFrameCorrupt) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if n < frameHeaderLen+frameTrailerLen || n > len(in) {
			t.Fatalf("consumed %d bytes of %d", n, len(in))
		}
		// Re-encode what was decoded; the result must decode identically.
		var rb FrameBuilder
		rb.Reset()
		_, _ = DecodeBatchFrame(in, func(s BatchSection) error {
			rb.BeginSection(s.Site)
			for i := 0; i < s.Len(); i++ {
				tt, tag, mask := s.At(i)
				rb.Add(tt, tag, mask)
			}
			return nil
		})
		var sites2 []int
		var recs2 []FrameReading
		if _, err := DecodeBatchFrame(rb.Finish(), func(s BatchSection) error {
			sites2 = append(sites2, s.Site)
			recs2 = s.AppendTo(recs2)
			return nil
		}); err != nil {
			t.Fatalf("re-encode failed to decode: %v", err)
		}
		if !reflect.DeepEqual(sites, sites2) || !reflect.DeepEqual(recs, recs2) {
			t.Fatalf("re-encode round trip diverged")
		}
		// A scan over the full input must terminate and stay panic-free.
		if _, err := ScanBatchFrames(in, func(BatchSection) error { return nil }); err != nil &&
			!errors.Is(err, ErrFramePartial) && !errors.Is(err, ErrFrameCorrupt) {
			t.Fatalf("ScanBatchFrames error class: %v", err)
		}
	})
}

// Package trace defines the on-disk and in-memory representation of an RFID
// trace: the reader layout, the raw readings for every tag, and the ground
// truth (true locations and containment over time) that the simulator
// records and the evaluation compares against.
//
// The package also implements the binary wire encoding used to account for
// communication costs. The centralized baseline of Table 5 ships raw
// readings with gzip compression; EncodeReadings/GzipSize reproduce exactly
// that accounting.
package trace

import (
	"fmt"
	"sort"

	"rfidtrack/internal/model"
)

// ReaderKind classifies a reader by its role in a warehouse.
type ReaderKind uint8

const (
	// ReaderEntry scans pallets arriving at the entry door.
	ReaderEntry ReaderKind = iota
	// ReaderBelt scans cases one at a time on the conveyor belt.
	ReaderBelt
	// ReaderShelf scans resident cases on a shelf (overlapping ranges).
	ReaderShelf
	// ReaderExit scans pallets leaving through the exit door.
	ReaderExit
	// ReaderMobile is a mobile reader sweeping shelf aisles (Section 5.3).
	ReaderMobile
)

// String returns the lower-case role name.
func (k ReaderKind) String() string {
	switch k {
	case ReaderEntry:
		return "entry"
	case ReaderBelt:
		return "belt"
	case ReaderShelf:
		return "shelf"
	case ReaderExit:
		return "exit"
	case ReaderMobile:
		return "mobile"
	default:
		return fmt.Sprintf("reader(%d)", uint8(k))
	}
}

// Reader describes one reader location within a site.
type Reader struct {
	Loc  model.Loc
	Kind ReaderKind
	Name string
}

// LocSpan records that a tag's true location was Loc during [From, To).
type LocSpan struct {
	From, To model.Epoch
	Loc      model.Loc
}

// ContSpan records that an object's true container was Container during
// [From, To). Container is -1 when the object is unpacked/removed.
type ContSpan struct {
	From, To  model.Epoch
	Container model.TagID
}

// Tag is one tagged object together with its readings and ground truth.
type Tag struct {
	ID       model.TagID
	Kind     model.TagKind
	Name     string
	Readings model.Series
	// TrueLoc is the ground-truth location timeline, sorted by From with
	// non-overlapping spans. Epochs not covered mean "not at this site".
	TrueLoc []LocSpan
	// TrueCont is the ground-truth containment timeline for items (and for
	// cases when pallet-level truth is recorded). Empty for containers.
	TrueCont []ContSpan
}

// TrueLocAt returns the ground-truth location at epoch t, or NoLoc.
func (tg *Tag) TrueLocAt(t model.Epoch) model.Loc {
	spans := tg.TrueLoc
	i := sort.Search(len(spans), func(i int) bool { return spans[i].To > t })
	if i < len(spans) && spans[i].From <= t {
		return spans[i].Loc
	}
	return model.NoLoc
}

// TrueContAt returns the ground-truth container at epoch t, or -1.
func (tg *Tag) TrueContAt(t model.Epoch) model.TagID {
	spans := tg.TrueCont
	i := sort.Search(len(spans), func(i int) bool { return spans[i].To > t })
	if i < len(spans) && spans[i].From <= t {
		return spans[i].Container
	}
	return -1
}

// SetTrueLoc appends or extends the location timeline so that the tag is at
// loc starting at epoch t. Calls must be made in non-decreasing t order.
func (tg *Tag) SetTrueLoc(t model.Epoch, loc model.Loc) {
	n := len(tg.TrueLoc)
	if n > 0 {
		last := &tg.TrueLoc[n-1]
		if last.Loc == loc && last.To >= t {
			return // already there; span will be extended by CloseAt
		}
		if last.To > t {
			last.To = t
		}
	}
	if loc == model.NoLoc {
		return
	}
	tg.TrueLoc = append(tg.TrueLoc, LocSpan{From: t, To: model.Epoch(1<<31 - 1), Loc: loc})
}

// SetTrueCont appends or truncates the containment timeline so the object
// is inside container starting at epoch t (container = -1 for "removed").
func (tg *Tag) SetTrueCont(t model.Epoch, container model.TagID) {
	n := len(tg.TrueCont)
	if n > 0 {
		last := &tg.TrueCont[n-1]
		if last.Container == container && last.To >= t {
			return
		}
		if last.To > t {
			last.To = t
		}
	}
	if container < 0 {
		return
	}
	tg.TrueCont = append(tg.TrueCont, ContSpan{From: t, To: model.Epoch(1<<31 - 1), Container: container})
}

// CloseAt clips all open-ended ground-truth spans to end at epoch end.
func (tg *Tag) CloseAt(end model.Epoch) {
	for i := range tg.TrueLoc {
		if tg.TrueLoc[i].To > end {
			tg.TrueLoc[i].To = end
		}
	}
	for i := range tg.TrueCont {
		if tg.TrueCont[i].To > end {
			tg.TrueCont[i].To = end
		}
	}
}

// Trace is a complete observed history for one site (or one merged global
// view): reader layout, measured read rates, and per-tag readings plus
// ground truth.
type Trace struct {
	// Epochs is the trace duration; all readings fall in [0, Epochs).
	Epochs model.Epoch
	// Readers describes every reader location, indexed by Loc.
	Readers []Reader
	// Rates is the measured per-scan read-rate table pi(r, a).
	Rates *model.ReadRates
	// Sched records when each reader interrogates.
	Sched *model.Schedule
	// Tags holds every tag, indexed by TagID.
	Tags []Tag
}

// NumReaders returns the number of reader locations.
func (tr *Trace) NumReaders() int { return len(tr.Readers) }

// Likelihood builds the observation model for this trace's rates and
// schedule. A nil schedule means every reader scans every epoch.
func (tr *Trace) Likelihood() *model.Likelihood {
	sched := tr.Sched
	if sched == nil {
		sched = model.AlwaysOn(len(tr.Readers))
	}
	return model.NewLikelihood(tr.Rates, sched)
}

// Items returns the IDs of all item-kind tags.
func (tr *Trace) Items() []model.TagID { return tr.kind(model.KindItem) }

// Cases returns the IDs of all case-kind tags.
func (tr *Trace) Cases() []model.TagID { return tr.kind(model.KindCase) }

// Pallets returns the IDs of all pallet-kind tags.
func (tr *Trace) Pallets() []model.TagID { return tr.kind(model.KindPallet) }

func (tr *Trace) kind(k model.TagKind) []model.TagID {
	var out []model.TagID
	for i := range tr.Tags {
		if tr.Tags[i].Kind == k {
			out = append(out, tr.Tags[i].ID)
		}
	}
	return out
}

// Validate checks structural invariants: tag IDs are dense, readings lie in
// [0, Epochs) with reader bits inside the layout, and ground-truth spans are
// sorted and non-overlapping. It returns the first violation found.
func (tr *Trace) Validate() error {
	if tr.Rates != nil && tr.Rates.N() != len(tr.Readers) {
		return fmt.Errorf("trace: rate table has %d locations, layout has %d", tr.Rates.N(), len(tr.Readers))
	}
	for i := range tr.Tags {
		tg := &tr.Tags[i]
		if tg.ID != model.TagID(i) {
			return fmt.Errorf("trace: tag at index %d has id %d", i, tg.ID)
		}
		var prev model.Epoch = -1
		for _, rd := range tg.Readings {
			if rd.T <= prev {
				return fmt.Errorf("trace: tag %d readings out of order at epoch %d", tg.ID, rd.T)
			}
			prev = rd.T
			if rd.T < 0 || rd.T >= tr.Epochs {
				return fmt.Errorf("trace: tag %d reading at epoch %d outside [0,%d)", tg.ID, rd.T, tr.Epochs)
			}
			if rd.Mask == 0 {
				return fmt.Errorf("trace: tag %d has empty mask at epoch %d", tg.ID, rd.T)
			}
			if hi := 64 - 1; len(tr.Readers) <= hi {
				if rd.Mask>>uint(len(tr.Readers)) != 0 {
					return fmt.Errorf("trace: tag %d mask references reader >= %d", tg.ID, len(tr.Readers))
				}
			}
		}
		if err := checkLocSpans(tg.TrueLoc); err != nil {
			return fmt.Errorf("trace: tag %d: %w", tg.ID, err)
		}
		if err := checkContSpans(tg.TrueCont); err != nil {
			return fmt.Errorf("trace: tag %d: %w", tg.ID, err)
		}
	}
	return nil
}

func checkLocSpans(spans []LocSpan) error {
	var prev model.Epoch
	for i, s := range spans {
		if s.From >= s.To {
			return fmt.Errorf("loc span %d empty [%d,%d)", i, s.From, s.To)
		}
		if i > 0 && s.From < prev {
			return fmt.Errorf("loc span %d overlaps previous", i)
		}
		prev = s.To
	}
	return nil
}

func checkContSpans(spans []ContSpan) error {
	var prev model.Epoch
	for i, s := range spans {
		if s.From >= s.To {
			return fmt.Errorf("cont span %d empty [%d,%d)", i, s.From, s.To)
		}
		if i > 0 && s.From < prev {
			return fmt.Errorf("cont span %d overlaps previous", i)
		}
		prev = s.To
	}
	return nil
}

// NumReadings returns the total number of (epoch, tag, reader) raw readings,
// i.e. the tuple count a centralized system would ship.
func (tr *Trace) NumReadings() int {
	n := 0
	for i := range tr.Tags {
		for _, rd := range tr.Tags[i].Readings {
			n += rd.Mask.Count()
		}
	}
	return n
}

package trace

import (
	"bytes"
	"testing"

	"rfidtrack/internal/model"
)

// fuzzSeedTrace builds a small hand-made trace whose encoding seeds the
// corpus with structurally valid wire bytes.
func fuzzSeedTrace() *Trace {
	tr := &Trace{
		Epochs:  100,
		Readers: []Reader{{Loc: 0, Kind: ReaderEntry}, {Loc: 1, Kind: ReaderShelf}},
	}
	for id := 0; id < 3; id++ {
		tg := Tag{ID: model.TagID(id), Kind: model.KindItem}
		for t := model.Epoch(id); t < 100; t += 7 {
			tg.Readings.AddMask(t, model.Mask(1+id%3))
		}
		tr.Tags = append(tr.Tags, tg)
	}
	return tr
}

// FuzzDecode hardens the reading-stream decoder: whatever bytes arrive —
// a truncated transfer, a corrupt migration payload, or hostile input — the
// decoder must return an error, never panic or make an absurd allocation.
func FuzzDecode(f *testing.F) {
	tr := fuzzSeedTrace()
	var buf bytes.Buffer
	if err := EncodeReadings(&buf, tr, nil); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:buf.Len()/2])                                                       // truncated transfer
	f.Add([]byte{wireVersion})                                                             // empty stream
	f.Add([]byte{wireVersion, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // absurd count
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := DecodeReadings(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successful decode must round-trip: re-encoding the decoded
		// series and decoding again yields the same content.
		total := 0
		for _, s := range decoded {
			total += len(s)
		}
		if total > len(data) {
			t.Fatalf("decoded %d readings from %d bytes", total, len(data))
		}
	})
}

// FuzzDecodeTagged exercises the decoder with the seed trace re-encoded
// for arbitrary fuzz-picked tag subsets, covering the tags != nil path.
func FuzzDecodeTagged(f *testing.F) {
	tr := fuzzSeedTrace()
	f.Add(uint8(1))
	f.Add(uint8(3))
	f.Fuzz(func(t *testing.T, n uint8) {
		var tags []model.TagID
		for id := 0; id < int(n)%len(tr.Tags)+1; id++ {
			tags = append(tags, model.TagID(id))
		}
		var buf bytes.Buffer
		if err := EncodeReadings(&buf, tr, tags); err != nil {
			t.Fatal(err)
		}
		decoded, err := DecodeReadings(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(decoded) != len(tags) {
			t.Fatalf("decoded %d tags, want %d", len(decoded), len(tags))
		}
		for _, id := range tags {
			want := tr.Tags[id].Readings
			got := decoded[id]
			if len(got) != len(want) {
				t.Fatalf("tag %d: %d readings, want %d", id, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("tag %d reading %d = %+v, want %+v", id, i, got[i], want[i])
				}
			}
		}
	})
}

package trace

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"

	"rfidtrack/internal/model"
)

// Wire format version for encoded traces and reading batches.
const wireVersion = 1

// EncodeReadings serializes the raw reading stream of the given tags as
// (epoch, tag, reader-mask) triples in epoch-major order — the exact payload
// a centralized deployment ships to the warehouse server. If tags is nil,
// all tags are encoded.
func EncodeReadings(w io.Writer, tr *Trace, tags []model.TagID) error {
	bw := newByteWriter(w)
	bw.uvarint(wireVersion)
	if tags == nil {
		tags = make([]model.TagID, len(tr.Tags))
		for i := range tags {
			tags[i] = model.TagID(i)
		}
	}
	bw.uvarint(uint64(len(tags)))
	for _, id := range tags {
		tg := &tr.Tags[id]
		bw.uvarint(uint64(id))
		bw.uvarint(uint64(len(tg.Readings)))
		var prev model.Epoch
		for _, rd := range tg.Readings {
			bw.uvarint(uint64(rd.T - prev)) // delta-encoded epochs
			prev = rd.T
			bw.uvarint(uint64(rd.Mask))
		}
	}
	return bw.err
}

// DecodeReadings reverses EncodeReadings, returning per-tag series keyed by
// tag ID.
func DecodeReadings(r io.Reader) (map[model.TagID]model.Series, error) {
	br := newByteReader(r)
	if v := br.uvarint(); v != wireVersion {
		if br.err != nil {
			return nil, br.err
		}
		return nil, fmt.Errorf("trace: unsupported wire version %d", v)
	}
	n := br.uvarint()
	if n > model.MaxDecodeElems {
		return nil, fmt.Errorf("trace: implausible tag count %d", n)
	}
	out := make(map[model.TagID]model.Series, model.DecodeCap(n))
	for i := uint64(0); i < n && br.err == nil; i++ {
		id := model.TagID(br.uvarint())
		cnt := br.uvarint()
		if cnt > model.MaxDecodeElems {
			return nil, fmt.Errorf("trace: implausible reading count %d for tag %d", cnt, id)
		}
		s := make(model.Series, 0, model.DecodeCap(cnt))
		var prev model.Epoch
		for j := uint64(0); j < cnt && br.err == nil; j++ {
			prev += model.Epoch(br.uvarint())
			s = append(s, model.Reading{T: prev, Mask: model.Mask(br.uvarint())})
		}
		out[id] = s
	}
	if br.err != nil {
		return nil, br.err
	}
	return out, nil
}

// EncodedSize returns the raw (uncompressed) wire size in bytes of the
// reading stream for the given tags.
func EncodedSize(tr *Trace, tags []model.TagID) int {
	var cw countWriter
	if err := EncodeReadings(&cw, tr, tags); err != nil {
		return 0
	}
	return cw.n
}

// GzipSize returns the gzip-compressed wire size in bytes of the reading
// stream for the given tags — the Table 5 accounting for the centralized
// baseline ("all raw data shipped with simple gzip compression").
func GzipSize(tr *Trace, tags []model.TagID) int {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if err := EncodeReadings(zw, tr, tags); err != nil {
		return 0
	}
	if err := zw.Close(); err != nil {
		return 0
	}
	return buf.Len()
}

type countWriter struct{ n int }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += len(p)
	return len(p), nil
}

// byteWriter accumulates varint writes with sticky errors.
type byteWriter struct {
	w   io.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

func newByteWriter(w io.Writer) *byteWriter { return &byteWriter{w: w} }

func (b *byteWriter) uvarint(v uint64) {
	if b.err != nil {
		return
	}
	n := binary.PutUvarint(b.buf[:], v)
	_, b.err = b.w.Write(b.buf[:n])
}

type byteReader struct {
	r   io.ByteReader
	err error
}

func newByteReader(r io.Reader) *byteReader {
	if br, ok := r.(io.ByteReader); ok {
		return &byteReader{r: br}
	}
	return &byteReader{r: &simpleByteReader{r: r}}
}

func (b *byteReader) uvarint() uint64 {
	if b.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(b.r)
	if err != nil {
		b.err = err
		return 0
	}
	return v
}

type simpleByteReader struct {
	r   io.Reader
	one [1]byte
}

func (s *simpleByteReader) ReadByte() (byte, error) {
	_, err := io.ReadFull(s.r, s.one[:])
	return s.one[0], err
}

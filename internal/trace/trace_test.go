package trace

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"rfidtrack/internal/model"
)

func buildTestTrace(t *testing.T) *Trace {
	t.Helper()
	rates, err := model.UniformReadRates(3, 0.8, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := &Trace{
		Epochs: 100,
		Readers: []Reader{
			{Loc: 0, Kind: ReaderEntry, Name: "entry"},
			{Loc: 1, Kind: ReaderBelt, Name: "belt"},
			{Loc: 2, Kind: ReaderExit, Name: "exit"},
		},
		Rates: rates,
		Tags: []Tag{
			{ID: 0, Kind: model.KindCase, Name: "c0"},
			{ID: 1, Kind: model.KindItem, Name: "i0"},
		},
	}
	tr.Tags[0].Readings.Add(1, 0)
	tr.Tags[0].Readings.Add(5, 1)
	tr.Tags[1].Readings.Add(5, 1)
	tr.Tags[1].Readings.Add(9, 2)
	tr.Tags[0].TrueLoc = []LocSpan{{From: 0, To: 4, Loc: 0}, {From: 4, To: 10, Loc: 1}}
	tr.Tags[1].TrueLoc = []LocSpan{{From: 0, To: 10, Loc: 0}}
	tr.Tags[1].TrueCont = []ContSpan{{From: 0, To: 10, Container: 0}}
	return tr
}

func TestTraceValidate(t *testing.T) {
	tr := buildTestTrace(t)
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestValidateCatchesBadTraces(t *testing.T) {
	cases := []struct {
		name   string
		break_ func(*Trace)
	}{
		{"wrong id", func(tr *Trace) { tr.Tags[1].ID = 5 }},
		{"reading beyond epochs", func(tr *Trace) { tr.Tags[0].Readings.Add(200, 0) }},
		{"mask beyond readers", func(tr *Trace) { tr.Tags[0].Readings.Add(50, 7) }},
		{"overlapping loc spans", func(tr *Trace) {
			tr.Tags[0].TrueLoc = []LocSpan{{From: 0, To: 6, Loc: 0}, {From: 4, To: 8, Loc: 1}}
		}},
		{"empty cont span", func(tr *Trace) {
			tr.Tags[1].TrueCont = []ContSpan{{From: 5, To: 5, Container: 0}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := buildTestTrace(t)
			tc.break_(tr)
			if err := tr.Validate(); err == nil {
				t.Error("invalid trace accepted")
			}
		})
	}
}

func TestTrueLocAndContAt(t *testing.T) {
	tr := buildTestTrace(t)
	tg := &tr.Tags[0]
	if got := tg.TrueLocAt(2); got != 0 {
		t.Errorf("TrueLocAt(2) = %d", got)
	}
	if got := tg.TrueLocAt(4); got != 1 {
		t.Errorf("TrueLocAt(4) = %d", got)
	}
	if got := tg.TrueLocAt(50); got != model.NoLoc {
		t.Errorf("TrueLocAt(50) = %d", got)
	}
	item := &tr.Tags[1]
	if got := item.TrueContAt(3); got != 0 {
		t.Errorf("TrueContAt(3) = %d", got)
	}
	if got := item.TrueContAt(20); got != -1 {
		t.Errorf("TrueContAt(20) = %d", got)
	}
}

func TestSetTrueLocTimeline(t *testing.T) {
	var tg Tag
	tg.SetTrueLoc(0, 2)
	tg.SetTrueLoc(10, 3)
	tg.SetTrueLoc(20, model.NoLoc)
	tg.SetTrueLoc(30, 2)
	tg.CloseAt(40)
	want := []LocSpan{{From: 0, To: 10, Loc: 2}, {From: 10, To: 20, Loc: 3}, {From: 30, To: 40, Loc: 2}}
	if !reflect.DeepEqual(tg.TrueLoc, want) {
		t.Errorf("timeline = %+v, want %+v", tg.TrueLoc, want)
	}
	if err := checkLocSpans(tg.TrueLoc); err != nil {
		t.Errorf("timeline invalid: %v", err)
	}
}

func TestKindSelectors(t *testing.T) {
	tr := buildTestTrace(t)
	if got := tr.Cases(); len(got) != 1 || got[0] != 0 {
		t.Errorf("Cases() = %v", got)
	}
	if got := tr.Items(); len(got) != 1 || got[0] != 1 {
		t.Errorf("Items() = %v", got)
	}
	if got := tr.Pallets(); len(got) != 0 {
		t.Errorf("Pallets() = %v", got)
	}
}

func TestEncodeDecodeReadings(t *testing.T) {
	tr := buildTestTrace(t)
	var buf bytes.Buffer
	if err := EncodeReadings(&buf, tr, nil); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeReadings(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Tags {
		if !reflect.DeepEqual(got[model.TagID(i)], tr.Tags[i].Readings) {
			t.Errorf("tag %d: got %v, want %v", i, got[model.TagID(i)], tr.Tags[i].Readings)
		}
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		tr := &Trace{
			Epochs:  1 << 14,
			Readers: []Reader{{Loc: 0}, {Loc: 1}, {Loc: 2}, {Loc: 3}},
			Tags:    []Tag{{ID: 0, Kind: model.KindItem}},
		}
		for _, v := range raw {
			tr.Tags[0].Readings.Add(model.Epoch(v), model.Loc(v%4))
		}
		var buf bytes.Buffer
		if err := EncodeReadings(&buf, tr, nil); err != nil {
			return false
		}
		got, err := DecodeReadings(&buf)
		if err != nil {
			return false
		}
		if len(tr.Tags[0].Readings) == 0 {
			return len(got[0]) == 0
		}
		return reflect.DeepEqual(got[0], tr.Tags[0].Readings)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSizesOrdering(t *testing.T) {
	tr := buildTestTrace(t)
	raw := EncodedSize(tr, nil)
	if raw <= 0 {
		t.Fatalf("raw size = %d", raw)
	}
	gz := GzipSize(tr, nil)
	if gz <= 0 {
		t.Fatalf("gzip size = %d", gz)
	}
	// Tiny payloads may grow under gzip; both must at least be sane.
	if raw > 1000 || gz > 1000 {
		t.Fatalf("sizes implausible: raw=%d gz=%d", raw, gz)
	}
}

func TestNumReadings(t *testing.T) {
	tr := buildTestTrace(t)
	if got := tr.NumReadings(); got != 4 {
		t.Errorf("NumReadings = %d, want 4", got)
	}
}

func TestDecodeReadingsBadVersion(t *testing.T) {
	if _, err := DecodeReadings(bytes.NewReader([]byte{99})); err == nil {
		t.Error("bad version accepted")
	}
}

// Package changepoint implements the containment change-point detection of
// Section 3.3: a generalized likelihood-ratio test over the point evidence
// of co-location, with the detection threshold δ chosen offline by sampling
// hypothetical observation sequences from the generative model.
package changepoint

import (
	"math"
	"math/rand/v2"

	"rfidtrack/internal/model"
)

// Best computes the change-point statistic Δ_o(T) of Eq 6 for one object
// from its per-candidate point-evidence matrix.
//
// evid[k][i] is the point evidence of candidate k at the i-th retained
// epoch; priors[k] is evidence carried over from before the retained window
// (collapsed migration weights), attributed to the first segment. Best
// returns the statistic value, the best split index (a change at
// epochs[split], with [0,split) explained by one container and [split,n) by
// another), and the best pre-split and post-split candidate indexes.
//
// Δ is always >= 0: the two-segment hypothesis can always reuse the single
// best container on both sides.
func Best(evid [][]float64, priors []float64) (delta float64, split, before, after int) {
	k := len(evid)
	if k == 0 {
		return 0, 0, -1, -1
	}
	n := len(evid[0])

	// One-segment likelihood: the best single candidate end to end.
	oneSeg := math.Inf(-1)
	totals := make([]float64, k)
	for j := 0; j < k; j++ {
		t := priors[j]
		for i := 0; i < n; i++ {
			t += evid[j][i]
		}
		totals[j] = t
		if t > oneSeg {
			oneSeg = t
		}
	}

	// Two-segment likelihood: scan every split, tracking the best prefix
	// incrementally; the best suffix is totals[j] - prefix[j].
	prefix := make([]float64, k)
	copy(prefix, priors)
	twoSeg := math.Inf(-1)
	bestSplit, bestBefore, bestAfter := 0, -1, -1
	for i := 0; i <= n; i++ {
		bp, bpj := math.Inf(-1), -1
		bs, bsj := math.Inf(-1), -1
		for j := 0; j < k; j++ {
			if prefix[j] > bp {
				bp, bpj = prefix[j], j
			}
			if s := totals[j] - prefix[j]; s > bs {
				bs, bsj = s, j
			}
		}
		if v := bp + bs; v > twoSeg {
			twoSeg, bestSplit, bestBefore, bestAfter = v, i, bpj, bsj
		}
		if i < n {
			for j := 0; j < k; j++ {
				prefix[j] += evid[j][i]
			}
		}
	}
	return twoSeg - oneSeg, bestSplit, bestBefore, bestAfter
}

// ThresholdConfig parameterizes the offline threshold sampler.
type ThresholdConfig struct {
	// Epochs is the length of each hypothetical sequence (use the recent
	// history size H̄ the engine will run with).
	Epochs model.Epoch
	// Decoys is how many non-container candidates each sequence includes.
	Decoys int
	// Samples is how many change-point-free sequences to draw.
	Samples int
	// Seed makes the choice reproducible.
	Seed int64
}

// DefaultThresholdConfig mirrors the engine defaults.
func DefaultThresholdConfig() ThresholdConfig {
	return ThresholdConfig{Epochs: 600, Decoys: 5, Samples: 50, Seed: 7}
}

// ChooseThreshold samples hypothetical observation sequences that contain
// no change point from the generative model of Section 3.1 and returns the
// maximum Δ observed, the paper's offline choice of δ. All computation
// happens before any real RFID data is seen.
func ChooseThreshold(lik *model.Likelihood, cfg ThresholdConfig) float64 {
	rng := rand.New(rand.NewPCG(uint64(cfg.Seed), 0x6a09e667f3bcc909))
	n := lik.N()
	maxDelta := 0.0
	for s := 0; s < cfg.Samples; s++ {
		// True container co-located with the object the whole time; decoys
		// wander independently (locations i.i.d. uniform per the model).
		evid := make([][]float64, 1+cfg.Decoys)
		for k := range evid {
			evid[k] = make([]float64, cfg.Epochs)
		}
		priors := make([]float64, 1+cfg.Decoys)

		lq := make([]float64, n)
		q := make([]float64, n)
		for t := model.Epoch(0); t < cfg.Epochs; t++ {
			trueLoc := model.Loc(rng.IntN(n))
			omask := sampleMask(rng, lik, t, trueLoc)
			for k := range evid {
				var cloc model.Loc
				if k == 0 {
					cloc = trueLoc
				} else {
					cloc = model.Loc(rng.IntN(n))
				}
				cmask := sampleMask(rng, lik, t, cloc)
				// Posterior from the candidate's own readings; the true
				// container's group additionally includes the object,
				// matching a converged engine.
				base := lik.BaseRow(t)
				gb := 1.0
				if k == 0 {
					gb = 2.0
				}
				for a := 0; a < n; a++ {
					lq[a] = gb * base[a]
				}
				addDeltas(lik, lq, cmask)
				if k == 0 {
					addDeltas(lik, lq, omask)
				}
				normalize(lq, q)
				ev := 0.0
				for a := 0; a < n; a++ {
					ev += q[a] * lik.MaskLogLik(t, omask, model.Loc(a))
				}
				evid[k][int(t)] = ev
			}
		}
		d, _, _, _ := Best(evid, priors)
		if d > maxDelta {
			maxDelta = d
		}
	}
	return maxDelta
}

// sampleMask draws one epoch's readings of a tag at location at: each
// reader scanning at t detects it independently with pi(r, at).
func sampleMask(rng *rand.Rand, lik *model.Likelihood, t model.Epoch, at model.Loc) model.Mask {
	var m model.Mask
	scan := lik.Schedule().ScanMask(t)
	for scan != 0 {
		r := scan.First()
		if rng.Float64() < lik.Rates().Prob(r, at) {
			m = m.Set(r)
		}
		scan &= scan - 1
	}
	return m
}

func addDeltas(lik *model.Likelihood, lq []float64, m model.Mask) {
	n := lik.N()
	for m != 0 {
		r := m.First()
		for a := 0; a < n; a++ {
			lq[a] += lik.Delta(r, model.Loc(a))
		}
		m &= m - 1
	}
}

func normalize(lq, q []float64) {
	maxv := math.Inf(-1)
	for _, v := range lq {
		if v > maxv {
			maxv = v
		}
	}
	sum := 0.0
	for a, v := range lq {
		q[a] = math.Exp(v - maxv)
		sum += q[a]
	}
	for a := range q {
		q[a] /= sum
	}
}

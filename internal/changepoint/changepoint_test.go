package changepoint

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rfidtrack/internal/model"
)

func TestBestNoCandidates(t *testing.T) {
	d, _, before, after := Best(nil, nil)
	if d != 0 || before != -1 || after != -1 {
		t.Fatalf("empty input: %v %v %v", d, before, after)
	}
}

func TestBestObviousChange(t *testing.T) {
	// Candidate 0 explains the first half, candidate 1 the second half.
	evid := [][]float64{
		{0, 0, 0, -10, -10, -10},
		{-10, -10, -10, 0, 0, 0},
	}
	priors := []float64{0, 0}
	d, split, before, after := Best(evid, priors)
	if split != 3 || before != 0 || after != 1 {
		t.Fatalf("split=%d before=%d after=%d", split, before, after)
	}
	// One segment: best single = -30; two segments: 0. Delta = 30.
	if math.Abs(d-30) > 1e-9 {
		t.Fatalf("delta = %v, want 30", d)
	}
}

func TestBestNoChange(t *testing.T) {
	// Candidate 0 dominates throughout: delta must be ~0.
	evid := [][]float64{
		{0, 0, 0, 0},
		{-5, -5, -5, -5},
	}
	d, _, _, after := Best(evid, []float64{0, 0})
	if d > 1e-9 {
		t.Fatalf("delta = %v for stable data", d)
	}
	if after != 0 {
		t.Fatalf("after = %d", after)
	}
}

func TestBestPriorsShiftSegmentOne(t *testing.T) {
	// Without priors candidate 1 wins both segments; a strong prior for
	// candidate 0 makes the pre-split segment prefer candidate 0.
	evid := [][]float64{
		{-1, -1, -1, -1},
		{0, 0, 0, 0},
	}
	d, _, before, _ := Best(evid, []float64{10, 0})
	if before != 0 {
		t.Fatalf("before = %d, want 0 (prior should dominate)", before)
	}
	if d < 0 {
		t.Fatalf("delta negative: %v", d)
	}
}

// TestBestNonNegativeProperty: Δ >= 0 always (the two-segment hypothesis
// can reuse the single best container on both sides).
func TestBestNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(4)
		n := rng.Intn(30)
		evid := make([][]float64, k)
		for j := range evid {
			evid[j] = make([]float64, n)
			for i := range evid[j] {
				evid[j][i] = rng.NormFloat64() * 10
			}
		}
		priors := make([]float64, k)
		for j := range priors {
			priors[j] = rng.NormFloat64() * 5
		}
		d, split, _, _ := Best(evid, priors)
		if d < -1e-9 {
			return false
		}
		return split >= 0 && split <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestBestMatchesBruteForce compares the incremental scan against a
// brute-force evaluation of every split and candidate pair.
func TestBestMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(3)
		n := 1 + rng.Intn(12)
		evid := make([][]float64, k)
		for j := range evid {
			evid[j] = make([]float64, n)
			for i := range evid[j] {
				evid[j][i] = math.Round(rng.NormFloat64() * 4)
			}
		}
		priors := make([]float64, k)

		got, _, _, _ := Best(evid, priors)

		oneSeg := math.Inf(-1)
		for j := 0; j < k; j++ {
			s := priors[j]
			for i := 0; i < n; i++ {
				s += evid[j][i]
			}
			if s > oneSeg {
				oneSeg = s
			}
		}
		twoSeg := math.Inf(-1)
		for split := 0; split <= n; split++ {
			for j1 := 0; j1 < k; j1++ {
				for j2 := 0; j2 < k; j2++ {
					s := priors[j1]
					for i := 0; i < split; i++ {
						s += evid[j1][i]
					}
					for i := split; i < n; i++ {
						s += evid[j2][i]
					}
					if s > twoSeg {
						twoSeg = s
					}
				}
			}
		}
		want := twoSeg - oneSeg
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestChooseThresholdDeterministic(t *testing.T) {
	rates, err := model.UniformReadRates(4, 0.8, 0.3, 0, func(r, a int) bool {
		return r-a == 1 || a-r == 1
	})
	if err != nil {
		t.Fatal(err)
	}
	lik := model.NewLikelihood(rates, model.AlwaysOn(4))
	cfg := ThresholdConfig{Epochs: 100, Decoys: 3, Samples: 10, Seed: 42}
	d1 := ChooseThreshold(lik, cfg)
	d2 := ChooseThreshold(lik, cfg)
	if d1 != d2 {
		t.Fatalf("not deterministic: %v vs %v", d1, d2)
	}
	if d1 < 0 {
		t.Fatalf("negative threshold %v", d1)
	}
}

package query

import (
	"testing"

	"rfidtrack/internal/model"
	"rfidtrack/internal/stream"
)

func pushTemps(e *Engine, t model.Epoch, temps map[model.Loc]float64) {
	for loc, temp := range temps {
		e.PushSensor(stream.Tuple{T: t, Tag: -1, Loc: loc, Sensor: int32(loc), Temp: temp})
	}
}

func frozenTuple(t model.Epoch, tag model.TagID, loc model.Loc, cont model.TagID) stream.Tuple {
	return stream.Tuple{
		T: t, Tag: tag, Loc: loc, Container: cont, Sensor: -1,
		Attrs: map[string]string{"type": "frozen"},
	}
}

func TestQ1AlertsOnExposure(t *testing.T) {
	freezer := func(id model.TagID) bool { return id == 100 }
	q := New(Q1Config(600, 300), freezer)

	temps := map[model.Loc]float64{2: 20}
	// Product 1 out of any freezer at a warm location for 4 checkpoints.
	for _, ts := range []model.Epoch{0, 300, 600, 900} {
		pushTemps(q, ts, temps)
		q.PushObject(frozenTuple(ts, 1, 2, 50)) // case 50 is not a freezer
	}
	if got := len(q.Matches()); got != 1 {
		t.Fatalf("matches = %d, want 1", got)
	}
	m := q.Matches()[0]
	if m.Tag != 1 || m.First != 0 || m.Last != 900 {
		t.Fatalf("match = %+v", m)
	}
}

func TestQ1FreezerResetsEpisode(t *testing.T) {
	freezer := func(id model.TagID) bool { return id == 100 }
	q := New(Q1Config(600, 300), freezer)
	temps := map[model.Loc]float64{2: 20}

	pushTemps(q, 0, temps)
	q.PushObject(frozenTuple(0, 1, 2, 50))
	pushTemps(q, 300, temps)
	q.PushObject(frozenTuple(300, 1, 2, 100)) // back in the freezer: reset
	for _, ts := range []model.Epoch{600, 900} {
		pushTemps(q, ts, temps)
		q.PushObject(frozenTuple(ts, 1, 2, 50))
	}
	// Exposure restarted at 600; span 300 < 600 so no alert yet.
	if got := len(q.Matches()); got != 0 {
		t.Fatalf("matches = %d, want 0", got)
	}
	pushTemps(q, 1201, temps)
	q.PushObject(frozenTuple(1201, 1, 2, 50))
	if got := len(q.Matches()); got != 1 {
		t.Fatalf("matches after re-exposure = %d, want 1", got)
	}
}

func TestQ1IgnoresNonProducts(t *testing.T) {
	q := New(Q1Config(600, 300), func(model.TagID) bool { return false })
	pushTemps(q, 0, map[model.Loc]float64{2: 20})
	for _, ts := range []model.Epoch{0, 300, 600, 900} {
		tu := frozenTuple(ts, 1, 2, 50)
		tu.Attrs = nil // not a frozen product
		q.PushObject(tu)
	}
	if len(q.Matches()) != 0 {
		t.Fatal("alerted on unmonitored product")
	}
}

func TestQ1ColdLocationNoAlert(t *testing.T) {
	// Temperature at or below the threshold never qualifies.
	q := New(Q1Config(600, 300), func(model.TagID) bool { return false })
	for _, ts := range []model.Epoch{0, 300, 600, 900} {
		pushTemps(q, ts, map[model.Loc]float64{2: -5})
		q.PushObject(frozenTuple(ts, 1, 2, 50))
	}
	if len(q.Matches()) != 0 {
		t.Fatal("alerted at sub-threshold temperature")
	}
}

func TestQ2IgnoresContainment(t *testing.T) {
	freezer := func(id model.TagID) bool { return true } // everything is a freezer
	q := New(Q2Config(600, 300), freezer)
	for _, ts := range []model.Epoch{0, 300, 600, 900} {
		pushTemps(q, ts, map[model.Loc]float64{2: 15})
		q.PushObject(frozenTuple(ts, 1, 2, 100))
	}
	// Q2 alerts on temperature alone (15 > 10), freezer or not.
	if got := len(q.Matches()); got != 1 {
		t.Fatalf("matches = %d, want 1", got)
	}
}

func TestQ2Threshold(t *testing.T) {
	q := New(Q2Config(600, 300), nil)
	for _, ts := range []model.Epoch{0, 300, 600, 900} {
		pushTemps(q, ts, map[model.Loc]float64{2: 8}) // below Q2's 10 degrees
		q.PushObject(frozenTuple(ts, 1, 2, -1))
	}
	if len(q.Matches()) != 0 {
		t.Fatal("Q2 alerted below its threshold")
	}
}

func TestQueryNoLocDropped(t *testing.T) {
	q := New(Q1Config(600, 300), func(model.TagID) bool { return false })
	pushTemps(q, 0, map[model.Loc]float64{2: 20})
	tu := frozenTuple(0, 1, model.NoLoc, 50)
	q.PushObject(tu)
	if st := q.Pattern().State(1); st != nil && st.Started {
		t.Fatal("event with unknown location started an episode")
	}
}

func TestMaxGapAcrossSilence(t *testing.T) {
	cfg := Q1Config(600, 300) // MaxGap = 600
	q := New(cfg, func(model.TagID) bool { return false })
	temps := map[model.Loc]float64{2: 20}
	pushTemps(q, 0, temps)
	q.PushObject(frozenTuple(0, 1, 2, 50))
	// Silence of 900 > MaxGap: episode restarts.
	pushTemps(q, 900, temps)
	q.PushObject(frozenTuple(900, 1, 2, 50))
	if st := q.Pattern().State(1); st.First != 900 {
		t.Fatalf("episode start = %d, want 900", st.First)
	}
}

func TestAlertedTags(t *testing.T) {
	q := New(Q1Config(200, 300), func(model.TagID) bool { return false })
	temps := map[model.Loc]float64{2: 20}
	for _, ts := range []model.Epoch{0, 300} {
		pushTemps(q, ts, temps)
		q.PushObject(frozenTuple(ts, 1, 2, 50))
		q.PushObject(frozenTuple(ts, 2, 2, 50))
	}
	tags := q.AlertedTags()
	if !tags[1] || !tags[2] || len(tags) != 2 {
		t.Fatalf("alerted = %v", tags)
	}
}

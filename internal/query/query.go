package query

import (
	"fmt"

	"rfidtrack/internal/model"
	"rfidtrack/internal/stream"
)

// Config parameterizes a Q1/Q2-style exposure query. The paper's 6-hour
// and 10-hour horizons scale down with the trace length.
type Config struct {
	// Name, when set, is the query's registry key: the stable identifier
	// alerts carry so the delivery tier can route per-pattern
	// subscriptions ("q1", "q2"). Empty derives a canonical key from the
	// query's shape; see PatternKey.
	Name string
	// ProductAttr and ProductValue select the monitored products
	// (e.g. type=frozen). Empty ProductAttr monitors every object.
	ProductAttr, ProductValue string
	// TempThreshold is the exposure temperature (0°C for Q1, 10° for Q2).
	TempThreshold float64
	// Duration is the required exposure span before alerting.
	Duration model.Epoch
	// MaxGap resets an exposure episode after a silence longer than this
	// (use ~2x the event snapshot interval).
	MaxGap model.Epoch
	// UseContainment gates exposure on "container is not a freezer or does
	// not exist" (Q1). When false only temperature matters (Q2).
	UseContainment bool
	// MinEvents is the minimum number of qualifying events an episode needs
	// before it can fire. A sustained exposure yields one event per
	// snapshot, so requiring ~duration/interval events rejects episodes
	// stitched from sporadic mis-localized events.
	MinEvents int
}

// Q1Config returns the paper's Q1 scaled to a trace: alert when a frozen
// product is out of any freezer case and at temperature > 0° for duration.
func Q1Config(duration, snapshotInterval model.Epoch) Config {
	return Config{
		Name:           "q1",
		ProductAttr:    "type",
		ProductValue:   "frozen",
		TempThreshold:  0,
		Duration:       duration,
		MaxGap:         2 * snapshotInterval,
		UseContainment: true,
		MinEvents:      minEvents(duration, snapshotInterval),
	}
}

// minEvents is the event count a continuous exposure of the given duration
// produces at the snapshot cadence.
func minEvents(duration, interval model.Epoch) int {
	if interval <= 0 {
		return 2
	}
	n := int(duration/interval) + 1
	if n < 2 {
		n = 2
	}
	return n
}

// Q2Config returns the paper's Q2: alert when frozen food sits at a
// location whose temperature exceeds 10° for duration.
func Q2Config(duration, snapshotInterval model.Epoch) Config {
	return Config{
		Name:           "q2",
		ProductAttr:    "type",
		ProductValue:   "frozen",
		TempThreshold:  10,
		Duration:       duration,
		MaxGap:         2 * snapshotInterval,
		UseContainment: false,
		MinEvents:      minEvents(duration, snapshotInterval),
	}
}

// PatternKey returns the query's stable registry key: Name when set, else
// a canonical key derived from the query's shape, so two sites running the
// same query always publish under the same key and a subscriber's
// per-pattern filter matches alerts from every site.
func (c Config) PatternKey() string {
	if c.Name != "" {
		return c.Name
	}
	key := fmt.Sprintf("exposure:t>%g:d%d", c.TempThreshold, c.Duration)
	if c.UseContainment {
		key += ":cont"
	}
	return key
}

// Engine runs one exposure query over the inferred object event stream and
// the raw sensor stream at one site.
type Engine struct {
	cfg Config
	// Freezer reports whether a container tag is a freezer case (the
	// manufacturer database lookup "container IsA 'freezer'").
	freezer func(model.TagID) bool

	temps   *stream.RowsTable // latest temperature per location
	pattern *stream.SeqPattern
	inner   *stream.LookupJoin
	matches []stream.Match
	onMatch func(stream.Match)
}

// New builds the query pipeline. freezer may be nil when the query does not
// use containment.
func New(cfg Config, freezer func(model.TagID) bool) *Engine {
	e := &Engine{cfg: cfg, freezer: freezer}
	e.temps = stream.NewRowsTable(func(tu stream.Tuple) int64 { return int64(tu.Loc) })
	e.pattern = stream.NewSeqPattern(cfg.Duration, cfg.MaxGap, func(m stream.Match) {
		e.matches = append(e.matches, m)
		if e.onMatch != nil {
			e.onMatch(m)
		}
	})
	e.pattern.MinEvents = cfg.MinEvents
	// Inner block: Products [Now] joined with the latest temperature at the
	// product's location, keeping rows above the exposure threshold.
	e.inner = &stream.LookupJoin{
		Table: e.temps,
		Key:   func(tu stream.Tuple) int64 { return int64(tu.Loc) },
		Combine: func(probe, build stream.Tuple) (stream.Tuple, bool) {
			probe.Temp = build.Temp
			probe.Sensor = build.Sensor
			return probe, probe.Temp > e.cfg.TempThreshold
		},
		Out: e.pattern.Push,
	}
	return e
}

// PushSensor feeds one temperature reading (build side of the join).
func (e *Engine) PushSensor(tu stream.Tuple) { e.temps.Push(tu) }

// PushObject feeds one inferred object event (probe side). Non-monitored
// products are filtered; monitored products that are observably safe (in a
// freezer, for Q1) reset their exposure episode.
func (e *Engine) PushObject(tu stream.Tuple) {
	if e.cfg.ProductAttr != "" && tu.Attr(e.cfg.ProductAttr) != e.cfg.ProductValue {
		return
	}
	if e.cfg.UseContainment {
		safe := tu.Container >= 0 && e.freezer != nil && e.freezer(tu.Container)
		if safe {
			e.pattern.Reset(tu.Tag)
			return
		}
	}
	if tu.Loc == model.NoLoc {
		return
	}
	e.inner.Push(tu)
}

// Matches returns every alert emitted so far.
func (e *Engine) Matches() []stream.Match { return e.matches }

// SetOnMatch registers fn to be called synchronously for every new match,
// from the goroutine pushing tuples into the engine. Online consumers
// (e.g. the serve alert feed) use this to publish alerts as they fire
// instead of polling Matches. A nil fn removes the hook.
func (e *Engine) SetOnMatch(fn func(stream.Match)) { e.onMatch = fn }

// AlertedTags returns the distinct tags with at least one alert.
func (e *Engine) AlertedTags() map[model.TagID]bool {
	out := make(map[model.TagID]bool, len(e.matches))
	for _, m := range e.matches {
		out[m.Tag] = true
	}
	return out
}

// ImportMatches restores the alert history of a recovered engine (the
// durable-state path of internal/wal): Matches and AlertedTags reflect the
// restored alerts, but the OnMatch hook does not fire — they were already
// delivered before the snapshot was taken.
func (e *Engine) ImportMatches(ms []stream.Match) {
	e.matches = append(e.matches[:0], ms...)
}

// Pattern exposes the pattern operator for state migration.
func (e *Engine) Pattern() *stream.SeqPattern { return e.pattern }

// PatternKey returns the engine's registry key; see Config.PatternKey.
func (e *Engine) PatternKey() string { return e.cfg.PatternKey() }

// ExportState extracts and removes the pattern state of a departing
// object, so it can travel with the object to the next site (Appendix B).
// It returns false when the object has no live episode here.
func (e *Engine) ExportState(tag model.TagID) (stream.SeqState, bool) {
	st := e.pattern.State(tag)
	if st == nil {
		return stream.SeqState{}, false
	}
	out := *st
	out.Values = append([]float64(nil), st.Values...)
	e.pattern.DropState(tag)
	return out, true
}

// ImportState installs migrated pattern state for an arriving object.
func (e *Engine) ImportState(tag model.TagID, st stream.SeqState) {
	e.pattern.SetState(tag, st)
}

package query

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestShareRoundTrip(t *testing.T) {
	states := [][]byte{
		[]byte("hello world, state A"),
		[]byte("hello world, state B"),
		[]byte("hello world, state A"),
		[]byte("completely different"),
	}
	b := Share(states)
	restored, err := b.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != len(states) {
		t.Fatalf("restored %d states", len(restored))
	}
	for i := range states {
		if !bytes.Equal(restored[i], states[i]) {
			t.Errorf("state %d: got %q, want %q", i, restored[i], states[i])
		}
	}
}

func TestShareEmpty(t *testing.T) {
	b := Share(nil)
	if b.Size() != 0 {
		t.Fatalf("empty bundle size %d", b.Size())
	}
	restored, err := b.Restore()
	if err != nil || restored != nil {
		t.Fatalf("restore empty: %v %v", restored, err)
	}
}

func TestShareCompressesSimilarStates(t *testing.T) {
	// 20 near-identical states (same container, same history) must shrink
	// dramatically, reproducing the ~10x of the Section 5.4 table.
	base := make([]byte, 200)
	for i := range base {
		base[i] = byte(i)
	}
	states := make([][]byte, 20)
	for i := range states {
		st := append([]byte(nil), base...)
		st[10] = byte(i) // one differing byte
		states[i] = st
	}
	b := Share(states)
	raw := TotalRaw(states)
	if b.Size() >= raw/5 {
		t.Errorf("shared %d bytes vs raw %d: expected >5x reduction", b.Size(), raw)
	}
	restored, err := b.Restore()
	if err != nil {
		t.Fatal(err)
	}
	for i := range states {
		if !bytes.Equal(restored[i], states[i]) {
			t.Fatalf("state %d corrupted", i)
		}
	}
}

func TestShareRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		states := make([][]byte, n)
		base := make([]byte, rng.Intn(100))
		rng.Read(base)
		for i := range states {
			st := append([]byte(nil), base...)
			// Random mutations, truncations, extensions.
			for k := 0; k < rng.Intn(5); k++ {
				if len(st) > 0 {
					st[rng.Intn(len(st))] = byte(rng.Intn(256))
				}
			}
			if rng.Intn(3) == 0 && len(st) > 2 {
				st = st[:rng.Intn(len(st))]
			}
			if rng.Intn(3) == 0 {
				extra := make([]byte, rng.Intn(20))
				rng.Read(extra)
				st = append(st, extra...)
			}
			states[i] = st
		}
		b := Share(states)
		restored, err := b.Restore()
		if err != nil {
			return false
		}
		for i := range states {
			if !bytes.Equal(restored[i], states[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDistance(t *testing.T) {
	if d := distance([]byte("abc"), []byte("abc")); d != 0 {
		t.Errorf("identical distance %d", d)
	}
	if d := distance([]byte("abc"), []byte("axc")); d != 1 {
		t.Errorf("one-diff distance %d", d)
	}
	if d := distance([]byte("ab"), []byte("abcd")); d != 2 {
		t.Errorf("length-diff distance %d", d)
	}
}

func TestCentroidChoice(t *testing.T) {
	states := [][]byte{
		[]byte("AAAA"),
		[]byte("AAAB"), // closest to all others
		[]byte("AABB"),
	}
	if got := centroidIndex(states); got != 1 {
		t.Errorf("centroid = %d, want 1", got)
	}
}

func TestApplyPatchRejectsCorrupt(t *testing.T) {
	patch := makePatch([]byte("abcd"), []byte("abXd"))
	// Corrupt: truncate mid-run.
	if _, err := applyPatch([]byte("abcd"), patch[:1]); err == nil {
		t.Skip("1-byte patch happened to parse; acceptable")
	}
}

package query

import (
	"reflect"
	"testing"

	"rfidtrack/internal/model"
	"rfidtrack/internal/stream"
)

func pushAt(p *PathTracker, tag model.TagID, t model.Epoch, loc model.Loc) {
	p.Push(stream.Tuple{T: t, Tag: tag, Loc: loc, Sensor: -1})
}

func TestPathCompression(t *testing.T) {
	p := NewPathTracker()
	pushAt(p, 1, 0, 0)
	pushAt(p, 1, 10, 0)
	pushAt(p, 1, 20, 3)
	pushAt(p, 1, 30, 3)
	pushAt(p, 1, 40, 5)
	path := p.Path(1)
	want := []PathStep{{Loc: 0, From: 0, To: 10}, {Loc: 3, From: 20, To: 30}, {Loc: 5, From: 40, To: 40}}
	if !reflect.DeepEqual(path, want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
}

func TestPathIgnoresNoLoc(t *testing.T) {
	p := NewPathTracker()
	pushAt(p, 1, 0, model.NoLoc)
	if len(p.Path(1)) != 0 {
		t.Fatal("NoLoc recorded")
	}
}

func TestDeviationDetection(t *testing.T) {
	p := NewPathTracker()
	var devs []Deviation
	p.OnDeviation = func(d Deviation) { devs = append(devs, d) }
	p.SetItinerary(1, []model.Loc{0, 1, 3, 10})
	p.SetItinerary(2, []model.Loc{0, 1, 3, 10})

	// Object 1 follows the itinerary, skipping the belt (allowed).
	for i, loc := range []model.Loc{0, 3, 10} {
		pushAt(p, 1, model.Epoch(i*10), loc)
	}
	// Object 2 deviates to shelf 5.
	pushAt(p, 2, 0, 0)
	pushAt(p, 2, 10, 1)
	pushAt(p, 2, 20, 5)
	if len(devs) != 1 {
		t.Fatalf("deviations = %v", devs)
	}
	d := devs[0]
	if d.Tag != 2 || d.Got != 5 || d.T != 20 {
		t.Fatalf("deviation = %+v", d)
	}
	// Fires once per object.
	pushAt(p, 2, 30, 6)
	if len(devs) != 1 {
		t.Fatal("deviation fired twice")
	}
}

func TestDeviationBacktrack(t *testing.T) {
	p := NewPathTracker()
	var devs []Deviation
	p.OnDeviation = func(d Deviation) { devs = append(devs, d) }
	p.SetItinerary(1, []model.Loc{0, 1, 2})
	pushAt(p, 1, 0, 1)
	pushAt(p, 1, 10, 0) // going backwards is a deviation
	if len(devs) != 1 {
		t.Fatalf("backtrack not flagged: %v", devs)
	}
}

func TestMinDwellSuppressesFlicker(t *testing.T) {
	p := NewPathTracker()
	p.MinDwell = 5
	pushAt(p, 1, 0, 2)
	pushAt(p, 1, 10, 2) // settled at 2
	pushAt(p, 1, 20, 3) // blip: never confirmed
	pushAt(p, 1, 21, 4) // replaces the blip
	pushAt(p, 1, 30, 4)
	path := p.Path(1)
	for _, step := range path {
		if step.Loc == 3 {
			t.Fatalf("flicker step recorded: %v", path)
		}
	}
}

func TestPathMigration(t *testing.T) {
	a := NewPathTracker()
	pushAt(a, 1, 0, 0)
	pushAt(a, 1, 10, 1)
	steps := a.ExportPath(1)
	if len(a.Path(1)) != 0 {
		t.Fatal("export did not remove state")
	}
	b := NewPathTracker()
	pushAt(b, 1, 30, 5) // local observation arrives before the import
	b.ImportPath(1, steps)
	path := b.Path(1)
	if len(path) != 3 || path[0].Loc != 0 || path[2].Loc != 5 {
		t.Fatalf("merged path = %v", path)
	}
	if got := b.Tracked(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("tracked = %v", got)
	}
}

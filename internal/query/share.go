package query

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// Centroid-based query state sharing (Appendix B). At a container's exit
// point, the query states of its objects are mostly alike (same container,
// same location, often identical exposure histories). Share picks the
// state that minimizes the total byte-difference to the others (the
// centroid; an O(n²) scan over the ≤ 20-50 objects per case) and encodes
// every other state as a byte-level patch against it.

// Bundle is a losslessly shared set of query states.
type Bundle struct {
	// CentroidIdx is the index of the centroid within the original slice.
	CentroidIdx int
	// Centroid is the full centroid state.
	Centroid []byte
	// Patches holds, for every input state in order, its patch against the
	// centroid (the centroid's own entry is an empty patch).
	Patches [][]byte
}

// Share compresses states against their centroid. It returns the bundle
// and is lossless: Restore returns byte-identical states.
func Share(states [][]byte) Bundle {
	if len(states) == 0 {
		return Bundle{CentroidIdx: -1}
	}
	ci := centroidIndex(states)
	b := Bundle{
		CentroidIdx: ci,
		Centroid:    append([]byte(nil), states[ci]...),
		Patches:     make([][]byte, len(states)),
	}
	for i, st := range states {
		if i == ci {
			b.Patches[i] = nil
			continue
		}
		b.Patches[i] = makePatch(b.Centroid, st)
	}
	return b
}

// Size returns the total shared representation size in bytes: the centroid
// plus all patches (the "State w. share" rows of the Section 5.4 table).
func (b Bundle) Size() int {
	n := len(b.Centroid)
	for _, p := range b.Patches {
		n += len(p)
	}
	return n
}

// Restore reverses Share.
func (b Bundle) Restore() ([][]byte, error) {
	if b.CentroidIdx < 0 {
		return nil, nil
	}
	out := make([][]byte, len(b.Patches))
	for i, p := range b.Patches {
		if i == b.CentroidIdx {
			out[i] = append([]byte(nil), b.Centroid...)
			continue
		}
		st, err := applyPatch(b.Centroid, p)
		if err != nil {
			return nil, fmt.Errorf("query: patch %d: %w", i, err)
		}
		out[i] = st
	}
	return out, nil
}

// TotalRaw returns the unshared total size of states ("State w/o share").
func TotalRaw(states [][]byte) int {
	n := 0
	for _, s := range states {
		n += len(s)
	}
	return n
}

// centroidIndex picks the state minimizing total distance to the others.
func centroidIndex(states [][]byte) int {
	best, bestSum := 0, int(^uint(0)>>1)
	for i := range states {
		sum := 0
		for j := range states {
			if i != j {
				sum += distance(states[i], states[j])
			}
		}
		if sum < bestSum {
			best, bestSum = i, sum
		}
	}
	return best
}

// distance counts differing byte positions (length mismatch counts fully).
func distance(a, b []byte) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	d := len(b) - len(a)
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}

// makePatch encodes state as runs of differing bytes against the centroid:
// uvarint(len(state)), then repeated (uvarint gap, uvarint runLen,
// runLen bytes) covering every position where state differs from centroid
// (positions beyond the centroid always differ).
func makePatch(centroid, state []byte) []byte {
	var out bytes.Buffer
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(buf[:], v)
		out.Write(buf[:n])
	}
	put(uint64(len(state)))
	pos := 0
	last := 0
	for pos < len(state) {
		if pos < len(centroid) && centroid[pos] == state[pos] {
			pos++
			continue
		}
		run := pos
		for run < len(state) && (run >= len(centroid) || centroid[run] != state[run]) {
			run++
		}
		put(uint64(pos - last))
		put(uint64(run - pos))
		out.Write(state[pos:run])
		last = run
		pos = run
	}
	return out.Bytes()
}

// applyPatch reverses makePatch.
func applyPatch(centroid, patch []byte) ([]byte, error) {
	r := bytes.NewReader(patch)
	length, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if length > 1<<30 {
		return nil, fmt.Errorf("implausible state length %d", length)
	}
	out := make([]byte, length)
	n := copy(out, centroid)
	for i := n; i < len(out); i++ {
		out[i] = 0
	}
	pos := 0
	for r.Len() > 0 {
		gap, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		runLen, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		pos += int(gap)
		if pos+int(runLen) > len(out) {
			return nil, fmt.Errorf("patch overruns state (%d+%d > %d)", pos, runLen, len(out))
		}
		if _, err := io.ReadFull(r, out[pos:pos+int(runLen)]); err != nil {
			return nil, err
		}
		pos += int(runLen)
	}
	return out, nil
}

package query

import (
	"fmt"
	"sort"

	"rfidtrack/internal/model"
	"rfidtrack/internal/stream"
)

// Tracking queries (Section 1): "report any pallet that has deviated from
// its intended path" and "list the path taken by a medical device". The
// PathTracker consumes the inferred object event stream and maintains a
// compressed location history per object; an optional itinerary per object
// turns it into a continuous deviation monitor.

// PathStep is one stop of an object's (compressed) location history.
type PathStep struct {
	Loc      model.Loc
	From, To model.Epoch
}

// String renders the step as "loc@[from,to]".
func (s PathStep) String() string {
	return fmt.Sprintf("%d@[%d,%d]", s.Loc, s.From, s.To)
}

// Deviation reports an object leaving its intended path.
type Deviation struct {
	Tag model.TagID
	T   model.Epoch
	// Got is the observed location; Want the next allowed location(s).
	Got  model.Loc
	Want []model.Loc
}

// PathTracker maintains per-object location histories from the event
// stream and checks them against registered itineraries. Its per-object
// state (the compressed path) migrates like any other query state.
type PathTracker struct {
	// MinDwell suppresses flicker: a location change is only committed to
	// the history after the object is seen there twice or after MinDwell
	// epochs. Zero commits immediately.
	MinDwell model.Epoch
	// OnDeviation receives deviation alerts as they are detected.
	OnDeviation func(Deviation)

	paths map[model.TagID][]PathStep
	itins map[model.TagID][]model.Loc
	fired map[model.TagID]bool
}

// NewPathTracker returns an empty tracker.
func NewPathTracker() *PathTracker {
	return &PathTracker{
		paths: make(map[model.TagID][]PathStep),
		itins: make(map[model.TagID][]model.Loc),
		fired: make(map[model.TagID]bool),
	}
}

// SetItinerary registers the allowed location sequence for an object.
// The object may dwell at each location arbitrarily long but must visit
// them in order (skipping ahead is allowed; going back or sideways is a
// deviation).
func (p *PathTracker) SetItinerary(tag model.TagID, locs []model.Loc) {
	p.itins[tag] = append([]model.Loc(nil), locs...)
}

// Push implements stream.Operator over object event tuples.
func (p *PathTracker) Push(tu stream.Tuple) {
	if tu.Loc == model.NoLoc {
		return
	}
	steps := p.paths[tu.Tag]
	n := len(steps)
	if n > 0 && steps[n-1].Loc == tu.Loc {
		steps[n-1].To = tu.T
		p.paths[tu.Tag] = steps
		return
	}
	if n > 0 && p.MinDwell > 0 && steps[n-1].To-steps[n-1].From < p.MinDwell {
		// The previous step never settled: treat it as flicker and replace
		// it rather than recording a spurious hop.
		steps[n-1] = PathStep{Loc: tu.Loc, From: tu.T, To: tu.T}
		p.paths[tu.Tag] = steps
		p.check(tu.Tag, tu.T, tu.Loc)
		return
	}
	p.paths[tu.Tag] = append(steps, PathStep{Loc: tu.Loc, From: tu.T, To: tu.T})
	p.check(tu.Tag, tu.T, tu.Loc)
}

// check validates the object's latest position against its itinerary.
func (p *PathTracker) check(tag model.TagID, t model.Epoch, loc model.Loc) {
	itin, ok := p.itins[tag]
	if !ok || p.fired[tag] {
		return
	}
	// The path so far must be a subsequence of the itinerary.
	pos := 0
	for _, step := range p.paths[tag] {
		next := indexOf(itin[pos:], step.Loc)
		if next < 0 {
			p.fired[tag] = true
			want := itin[pos:]
			if p.OnDeviation != nil {
				p.OnDeviation(Deviation{Tag: tag, T: t, Got: loc, Want: append([]model.Loc(nil), want...)})
			}
			return
		}
		pos += next
	}
}

func indexOf(locs []model.Loc, loc model.Loc) int {
	for i, l := range locs {
		if l == loc {
			return i
		}
	}
	return -1
}

// Path returns the object's compressed location history.
func (p *PathTracker) Path(tag model.TagID) []PathStep {
	return append([]PathStep(nil), p.paths[tag]...)
}

// Tracked returns the sorted tags with recorded paths.
func (p *PathTracker) Tracked() []model.TagID {
	out := make([]model.TagID, 0, len(p.paths))
	for tag := range p.paths {
		out = append(out, tag)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ExportPath serializes an object's path state for migration and removes
// it from this tracker.
func (p *PathTracker) ExportPath(tag model.TagID) []PathStep {
	steps := p.paths[tag]
	delete(p.paths, tag)
	return steps
}

// ImportPath installs migrated path state, appending to any local steps in
// time order.
func (p *PathTracker) ImportPath(tag model.TagID, steps []PathStep) {
	merged := append(append([]PathStep(nil), steps...), p.paths[tag]...)
	sort.Slice(merged, func(i, j int) bool { return merged[i].From < merged[j].From })
	p.paths[tag] = merged
}

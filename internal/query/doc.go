// Package query assembles the paper's monitoring queries Q1 and Q2
// (Section 2 and Section 5.4) from the stream operators, partitions their
// computation state per object, and implements the centroid-based query
// state sharing of Appendix B used for state migration.
//
// Q1: "for any temperature-sensitive product, raise an alert if it has been
// placed outside a freezer and exposed to temperature above a threshold for
// a duration" — combines inferred location AND containment.
//
// Q2: "report the frozen food that has been exposed to temperature over a
// threshold for a duration" — uses inferred location only.
//
// An Engine runs one query at one site, fed at every inference checkpoint
// with the site's sensor readings (PushSensor) and inferred object events
// (PushObject). Alerts accumulate in Matches; online consumers register a
// SetOnMatch callback instead, which internal/serve uses to push alerts to
// subscribers the moment a pattern fires. ExportState/ImportState move a
// departing object's pattern state between sites (Appendix B), and
// PathTracker answers the paper's tracking queries.
package query

// Package smurf implements the SMURF* baseline of Appendix C.3: SMURF
// (Jeffery et al., VLDB Journal 2007) per-tag adaptive-window smoothing for
// location estimation, extended with co-location heuristics for containment
// inference and containment change detection.
//
// SMURF models reads within a window as Bernoulli samples: the window is
// sized so that a present tag is read with high probability
// (w* = ln(2/δ)/p̂ scans), and is halved when the read counts of the two
// window halves differ by more than two standard deviations (a detected
// transition). Location is the per-reader majority vote inside the window.
//
// SMURF* then treats the most frequently co-located case as an item's
// container. At a candidate change time t (the start of the item's current
// adaptive window after a transition), if the top co-located case before t
// differs from the one after t and the top-k sets before and after are
// disjoint, a containment change is reported at t and the container is
// re-estimated from the data after t.
package smurf

import (
	"fmt"
	"math"
	"sort"

	"rfidtrack/internal/model"
)

// Config tunes the baseline.
type Config struct {
	// MinWindow and MaxWindow bound the adaptive window (epochs).
	MinWindow, MaxWindow model.Epoch
	// Confidence is the δ of the SMURF window-sizing formula.
	Confidence float64
	// TopK is the size of the co-location sets compared around a candidate
	// change time.
	TopK int
}

// DefaultConfig returns the configuration used in the paper's comparison.
func DefaultConfig() Config {
	return Config{MinWindow: 10, MaxWindow: 300, Confidence: 0.05, TopK: 3}
}

// ChangeReport is a containment change detected by SMURF*.
type ChangeReport struct {
	Object       model.TagID
	At           model.Epoch
	DetectedAt   model.Epoch
	NewContainer model.TagID
}

type tagState struct {
	id          model.TagID
	isContainer bool
	series      model.Series
	window      model.Epoch // current adaptive window size
	transition  model.Epoch // start epoch of post-transition data (0 if none)
	container   model.TagID
}

// Engine is the SMURF* pipeline: feed readings with ObserveMask, call Run
// periodically, then query Container and LocationAt.
type Engine struct {
	cfg     Config
	lik     *model.Likelihood
	tags    map[model.TagID]*tagState
	objects []model.TagID
	conts   []model.TagID
	now     model.Epoch
	changes []ChangeReport
}

// New returns a SMURF* engine. Like SMURF, it knows the measured per-reader
// read rates (reference-tag calibration) and the interrogation schedule,
// and uses them to normalize observed counts by expected counts.
func New(lik *model.Likelihood, cfg Config) *Engine {
	return &Engine{cfg: cfg, lik: lik, tags: make(map[model.TagID]*tagState)}
}

// RegisterObject declares an item tag.
func (e *Engine) RegisterObject(id model.TagID) {
	if _, ok := e.tags[id]; ok {
		return
	}
	e.tags[id] = &tagState{id: id, container: -1, window: e.cfg.MinWindow}
	e.objects = append(e.objects, id)
}

// RegisterContainer declares a case tag.
func (e *Engine) RegisterContainer(id model.TagID) {
	if _, ok := e.tags[id]; ok {
		return
	}
	e.tags[id] = &tagState{id: id, isContainer: true, container: -1, window: e.cfg.MinWindow}
	e.conts = append(e.conts, id)
}

// ObserveMask records one epoch's readings for a tag.
func (e *Engine) ObserveMask(t model.Epoch, id model.TagID, m model.Mask) error {
	st, ok := e.tags[id]
	if !ok {
		return fmt.Errorf("smurf: reading for unregistered tag %d", id)
	}
	st.series.AddMask(t, m)
	if t > e.now {
		e.now = t
	}
	return nil
}

// Run adapts every tag's window (SMURF) and re-estimates containment
// (SMURF*) as of epoch now.
func (e *Engine) Run(now model.Epoch) {
	if now > e.now {
		e.now = now
	}
	for _, st := range e.tags {
		e.adaptWindow(st, now)
	}
	e.inferContainment(now)
}

// adaptWindow applies SMURF's binomial window adaptation for one tag. The
// window is sized in interrogation cycles of the tag's dominant reader
// (SMURF's unit is the reader's interrogation cycle, which for shelf
// readers is 10 epochs), then converted back to epochs.
func (e *Engine) adaptWindow(st *tagState, now model.Epoch) {
	w := st.window
	if w < e.cfg.MinWindow {
		w = e.cfg.MinWindow
	}
	from := now - w
	if st.series.CountIn(from, now+1) == 0 {
		// Nothing observed: widen to gather evidence.
		st.window = clampW(w*2, e.cfg.MinWindow, e.cfg.MaxWindow)
		return
	}
	// Dominant reader: the most frequent reader of this tag in the window.
	counts := make(map[model.Loc]int)
	for _, rd := range st.series.Window(from, now+1) {
		for m := rd.Mask; m != 0; m &= m - 1 {
			counts[m.First()]++
		}
	}
	var dom model.Loc = model.NoLoc
	nDom := 0
	for loc, n := range counts {
		if n > nDom || (n == nDom && loc < dom) {
			dom, nDom = loc, n
		}
	}
	sDom := e.scansIn(dom, from, now+1)
	if sDom == 0 {
		st.window = clampW(w*2, e.cfg.MinWindow, e.cfg.MaxWindow)
		return
	}
	p := float64(nDom) / float64(sDom)
	if p > 1 {
		p = 1
	}
	period := float64(w) / float64(sDom)
	// Required window: ln(2/δ)/p̂ interrogation cycles of the dominant
	// reader, converted to epochs.
	wStar := model.Epoch(math.Ceil(math.Log(2/e.cfg.Confidence) / p * period))

	// Transition check: compare the dominant reader's second-half reads
	// against the binomial expectation from the whole window.
	half := w / 2
	n2 := 0
	for _, rd := range st.series.Window(now-half, now+1) {
		if rd.Mask.Has(dom) {
			n2++
		}
	}
	exp := float64(nDom) / 2
	sigma := math.Sqrt(float64(sDom) / 2 * p * (1 - p))
	if math.Abs(float64(n2)-exp) > 2*sigma+1 {
		// Likely moved: shrink and mark the transition at the halfway point.
		st.window = clampW(w/2, e.cfg.MinWindow, e.cfg.MaxWindow)
		st.transition = now - half
		return
	}
	st.window = clampW(wStar, e.cfg.MinWindow, e.cfg.MaxWindow)
}

func clampW(w, lo, hi model.Epoch) model.Epoch {
	if w < lo {
		return lo
	}
	if w > hi {
		return hi
	}
	return w
}

// LocationAt estimates a tag's location at epoch t by per-tag maximum
// likelihood over the tag's adaptive window: each reader's read count in
// the window is a binomial sample with the calibrated per-scan rate
// pi(r, a), so the location maximizing the product of binomial likelihoods
// is chosen. This is "smoothing over time for individual objects" — it
// uses no containment information, which is exactly what SMURF* lacks
// relative to RFINFER.
func (e *Engine) LocationAt(id model.TagID, t model.Epoch) model.Loc {
	st, ok := e.tags[id]
	if !ok {
		return model.NoLoc
	}
	w := st.window
	if w < e.cfg.MinWindow {
		w = e.cfg.MinWindow
	}
	n := e.lik.N()
	reads := make([]int, n)
	any := false
	for _, rd := range st.series.Window(t-w, t+1) {
		for m := rd.Mask; m != 0; m &= m - 1 {
			reads[m.First()]++
			any = true
		}
	}
	if !any {
		// Fall back to the most recent read anywhere in history.
		i := sort.Search(len(st.series), func(i int) bool { return st.series[i].T > t })
		if i == 0 {
			return model.NoLoc
		}
		return st.series[i-1].Mask.First()
	}
	scans := make([]int, n)
	for r := 0; r < n; r++ {
		scans[r] = e.scansIn(model.Loc(r), t-w, t+1)
	}
	rates := e.lik.Rates()
	best, bestLL := model.NoLoc, math.Inf(-1)
	for a := 0; a < n; a++ {
		ll := 0.0
		for r := 0; r < n; r++ {
			if scans[r] == 0 {
				continue
			}
			p := rates.Prob(model.Loc(r), model.Loc(a))
			ll += float64(reads[r])*math.Log(p) + float64(scans[r]-reads[r])*math.Log1p(-p)
		}
		if ll > bestLL {
			best, bestLL = model.Loc(a), ll
		}
	}
	return best
}

// scansIn counts reader r's interrogations in [from, to).
func (e *Engine) scansIn(r model.Loc, from, to model.Epoch) int {
	if from < 0 {
		from = 0
	}
	sched := e.lik.Schedule()
	n := 0
	for t := from; t < to; t++ {
		if sched.Scans(r, t) {
			n++
		}
	}
	return n
}

// Container returns the current SMURF* containment estimate for an item.
func (e *Engine) Container(id model.TagID) model.TagID {
	if st, ok := e.tags[id]; ok && !st.isContainer {
		return st.container
	}
	return -1
}

// Changes returns all containment changes reported so far.
func (e *Engine) Changes() []ChangeReport { return e.changes }

// inferContainment applies the SMURF* heuristics of Appendix C.3.
func (e *Engine) inferContainment(now model.Epoch) {
	// Epoch-indexed container reads for co-location counting.
	byEpoch := make(map[model.Epoch][]struct {
		id   model.TagID
		mask model.Mask
	})
	for _, cid := range e.conts {
		for _, rd := range e.tags[cid].series {
			byEpoch[rd.T] = append(byEpoch[rd.T], struct {
				id   model.TagID
				mask model.Mask
			}{cid, rd.Mask})
		}
	}

	for _, oid := range e.objects {
		st := e.tags[oid]
		t := st.transition
		before := make(map[model.TagID]int)
		after := make(map[model.TagID]int)
		for _, rd := range st.series {
			for _, cr := range byEpoch[rd.T] {
				if cr.mask&rd.Mask == 0 {
					continue
				}
				if rd.T < t {
					before[cr.id]++
				} else {
					after[cr.id]++
				}
			}
		}
		if len(before) == 0 && len(after) == 0 {
			continue
		}
		topBefore := topK(before, e.cfg.TopK)
		topAfter := topK(after, e.cfg.TopK)
		switch {
		case t == 0 || len(topBefore) == 0:
			st.container = first(topAfter, st.container)
		case len(topAfter) == 0:
			st.container = first(topBefore, st.container)
		case topBefore[0] == topAfter[0]:
			st.container = topBefore[0]
			st.transition = 0
		case disjoint(topBefore, topAfter):
			// Containment change at t: pick the case most co-located since.
			st.container = topAfter[0]
			e.changes = append(e.changes, ChangeReport{
				Object: oid, At: t, DetectedAt: now, NewContainer: topAfter[0],
			})
			st.transition = 0
		default:
			// A shared case between the top-k sets is likely the true
			// container whose reads were missed (Appendix C.3's second
			// check).
			st.container = sharedBest(topBefore, topAfter, before, after)
		}
	}
}

func topK(counts map[model.TagID]int, k int) []model.TagID {
	type kv struct {
		id model.TagID
		n  int
	}
	all := make([]kv, 0, len(counts))
	for id, n := range counts {
		all = append(all, kv{id, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].id < all[j].id
	})
	if len(all) > k {
		all = all[:k]
	}
	out := make([]model.TagID, len(all))
	for i, x := range all {
		out[i] = x.id
	}
	return out
}

func first(ids []model.TagID, fallback model.TagID) model.TagID {
	if len(ids) > 0 {
		return ids[0]
	}
	return fallback
}

func disjoint(a, b []model.TagID) bool {
	set := make(map[model.TagID]bool, len(a))
	for _, id := range a {
		set[id] = true
	}
	for _, id := range b {
		if set[id] {
			return false
		}
	}
	return true
}

func sharedBest(a, b []model.TagID, before, after map[model.TagID]int) model.TagID {
	set := make(map[model.TagID]bool, len(a))
	for _, id := range a {
		set[id] = true
	}
	best, bestN := model.TagID(-1), -1
	for _, id := range b {
		if !set[id] {
			continue
		}
		if n := before[id] + after[id]; n > bestN || (n == bestN && id < best) {
			best, bestN = id, n
		}
	}
	return best
}

package smurf

import (
	"math/rand/v2"
	"testing"

	"rfidtrack/internal/model"
)

func testLik(t *testing.T) *model.Likelihood {
	t.Helper()
	pi := [][]float64{
		{0.8, 0, 0, 0},
		{0, 0.8, 0, 0},
		{0, 0, 0.8, 0.3},
		{0, 0, 0.3, 0.8},
	}
	rates, err := model.NewReadRates(pi)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := model.NewSchedule(5, 4, func(r, p int) bool {
		if r < 2 {
			return true
		}
		return p == r
	})
	if err != nil {
		t.Fatal(err)
	}
	return model.NewLikelihood(rates, sched)
}

func feed(t *testing.T, e *Engine, rng *rand.Rand, lik *model.Likelihood,
	id model.TagID, at model.Loc, from, to model.Epoch) {
	t.Helper()
	for ep := from; ep < to; ep++ {
		var m model.Mask
		scan := lik.Schedule().ScanMask(ep)
		for scan != 0 {
			r := scan.First()
			if rng.Float64() < lik.Rates().Prob(r, at) {
				m = m.Set(r)
			}
			scan &= scan - 1
		}
		if m != 0 {
			if err := e.ObserveMask(ep, id, m); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestSmurfLocation(t *testing.T) {
	lik := testLik(t)
	e := New(lik, DefaultConfig())
	rng := rand.New(rand.NewPCG(1, 1))
	e.RegisterObject(1)
	feed(t, e, rng, lik, 1, 2, 0, 300)
	e.Run(299)
	if loc := e.LocationAt(1, 299); loc != 2 {
		t.Errorf("location = %d, want 2", loc)
	}
}

func TestSmurfLocationFallback(t *testing.T) {
	e := New(testLik(t), DefaultConfig())
	e.RegisterObject(1)
	if err := e.ObserveMask(5, 1, model.Mask(0).Set(3)); err != nil {
		t.Fatal(err)
	}
	e.Run(500)
	// Reading far outside the window: falls back to the last read.
	if loc := e.LocationAt(1, 500); loc != 3 {
		t.Errorf("fallback location = %d, want 3", loc)
	}
	if loc := e.LocationAt(1, 2); loc != model.NoLoc {
		t.Errorf("location before data = %d", loc)
	}
	if loc := e.LocationAt(99, 0); loc != model.NoLoc {
		t.Errorf("unknown tag located at %d", loc)
	}
}

func TestSmurfContainment(t *testing.T) {
	lik := testLik(t)
	e := New(lik, DefaultConfig())
	rng := rand.New(rand.NewPCG(2, 2))
	e.RegisterContainer(10)
	e.RegisterContainer(11)
	e.RegisterObject(1)
	feed(t, e, rng, lik, 10, 2, 0, 300) // true container co-located
	feed(t, e, rng, lik, 11, 3, 0, 300) // decoy elsewhere
	feed(t, e, rng, lik, 1, 2, 0, 300)
	e.Run(299)
	if got := e.Container(1); got != 10 {
		t.Errorf("container = %d, want 10", got)
	}
	if got := e.Container(10); got != -1 {
		t.Errorf("container of a container = %d", got)
	}
}

func TestSmurfChangeDetection(t *testing.T) {
	lik := testLik(t)
	cfg := DefaultConfig()
	e := New(lik, cfg)
	rng := rand.New(rand.NewPCG(3, 3))
	e.RegisterContainer(10)
	e.RegisterContainer(11)
	e.RegisterObject(1)
	// Both containers resident throughout; the object moves from 10 (loc 2)
	// to 11 (loc 3) at epoch 400.
	feed(t, e, rng, lik, 10, 2, 0, 800)
	feed(t, e, rng, lik, 11, 3, 0, 800)
	feed(t, e, rng, lik, 1, 2, 0, 400)
	feed(t, e, rng, lik, 1, 3, 400, 800)
	for ckpt := model.Epoch(100); ckpt <= 800; ckpt += 100 {
		e.Run(ckpt - 1)
	}
	if got := e.Container(1); got != 11 {
		t.Errorf("container after move = %d, want 11", got)
	}
}

func TestSmurfRejectsUnknown(t *testing.T) {
	e := New(testLik(t), DefaultConfig())
	if err := e.ObserveMask(0, 7, 1); err == nil {
		t.Error("unregistered tag accepted")
	}
}

func TestAdaptWindowGrowsWhenSilent(t *testing.T) {
	e := New(testLik(t), DefaultConfig())
	e.RegisterObject(1)
	st := e.tags[model.TagID(1)]
	st.window = 20
	e.adaptWindow(st, 1000) // no readings at all
	if st.window <= 20 {
		t.Errorf("window did not grow: %d", st.window)
	}
}

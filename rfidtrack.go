// Package rfidtrack is a distributed stream-processing library for RFID
// tracking and monitoring, reproducing Cao, Sutton, Diao & Shenoy,
// "Distributed Inference and Query Processing for RFID Tracking and
// Monitoring", PVLDB 4(5), 2011.
//
// The library combines probabilistic location and containment inference
// (the RFINFER EM algorithm, with change-point detection and critical-region
// history truncation) with CQL-style continuous query processing, and scales
// both across sites via state migration.
//
// # Quick start
//
//	cfg := rfidtrack.DefaultSimConfig()          // or feed your own readings
//	world, _ := rfidtrack.Simulate(cfg)
//	tr := world.Single()
//	eng := rfidtrack.NewEngine(tr.Likelihood(), rfidtrack.DefaultInferConfig())
//	// register tags, Observe readings, then:
//	eng.Run(now)
//	container := eng.Container(itemID)
//	loc := eng.LocationAt(itemID, now)
//
// The subsystems live in internal packages and are re-exported here:
//
//   - inference engine (internal/rfinfer): RFINFER, change points, critical
//     regions, collapsed state migration
//   - observation model (internal/model): read-rate tables, reader
//     schedules, likelihoods
//   - supply-chain simulator (internal/sim): the paper's workload generator
//     and lab traces T1-T8
//   - stream processing (internal/stream, internal/query): operators, SEQ
//     pattern matching, queries Q1/Q2, centroid state sharing
//   - distributed runtime (internal/dist): sites, ONS, migration strategies
//   - online service (internal/serve): the rfidtrackd streaming daemon —
//     bounded-queue ingestion, Δ-interval scheduling, alert subscriptions
//   - baseline (internal/smurf): SMURF* for comparison
//
// See README.md for a tour and ARCHITECTURE.md for the dataflow and the
// determinism argument.
package rfidtrack

import (
	"rfidtrack/internal/changepoint"
	"rfidtrack/internal/dist"
	"rfidtrack/internal/metrics"
	"rfidtrack/internal/model"
	"rfidtrack/internal/query"
	"rfidtrack/internal/rfinfer"
	"rfidtrack/internal/serve"
	"rfidtrack/internal/sim"
	"rfidtrack/internal/smurf"
	"rfidtrack/internal/stream"
	"rfidtrack/internal/trace"
	"rfidtrack/internal/wal"
)

// Core identifier and time types.
type (
	// TagID identifies a tagged object (item, case, or pallet).
	TagID = model.TagID
	// Epoch is a discrete second of simulated or wall time.
	Epoch = model.Epoch
	// Loc indexes a reader location within a site.
	Loc = model.Loc
	// Mask records which readers detected a tag in one epoch.
	Mask = model.Mask
	// TagKind classifies tags by packaging level.
	TagKind = model.TagKind
)

// Observation-model types.
type (
	// ReadRates is the per-scan read-rate table pi(r, a).
	ReadRates = model.ReadRates
	// Schedule records when each reader interrogates.
	Schedule = model.Schedule
	// Likelihood is the combined observation model.
	Likelihood = model.Likelihood
	// Series is a tag's reading history.
	Series = model.Series
	// Reading is one epoch's observation mask.
	Reading = model.Reading
)

// NoLoc marks an unknown location.
const NoLoc = model.NoLoc

// Tag kinds.
const (
	KindItem   = model.KindItem
	KindCase   = model.KindCase
	KindPallet = model.KindPallet
)

// Trace types.
type (
	// Trace is a site's readings plus ground truth.
	Trace = trace.Trace
	// TraceTag is one tag within a trace.
	TraceTag = trace.Tag
	// Reader describes a reader location.
	Reader = trace.Reader
)

// Inference types.
type (
	// Engine is the RFINFER inference engine.
	Engine = rfinfer.Engine
	// InferConfig tunes the engine.
	InferConfig = rfinfer.Config
	// Detection is a detected containment change point.
	Detection = rfinfer.Detection
	// Event is one inferred object event (time, tag, location, container).
	Event = rfinfer.Event
	// CollapsedState is the weights-only migrated inference state.
	CollapsedState = rfinfer.CollapsedState
	// CRState is the critical-region migrated inference state.
	CRState = rfinfer.CRState
)

// History-truncation strategies.
const (
	TruncateCR     = rfinfer.TruncateCR
	TruncateNone   = rfinfer.TruncateNone
	TruncateWindow = rfinfer.TruncateWindow
)

// Simulation types.
type (
	// SimConfig holds the workload parameters of the paper's Table 2.
	SimConfig = sim.Config
	// World is a simulated multi-site deployment with ground truth.
	World = sim.World
	// LabTraceParams describes one of the lab traces T1-T8.
	LabTraceParams = sim.LabTraceParams
)

// Stream and query types.
type (
	// Tuple is a stream element.
	Tuple = stream.Tuple
	// SeqPattern is the SEQ(A+) pattern operator.
	SeqPattern = stream.SeqPattern
	// Match is an emitted pattern match.
	Match = stream.Match
	// QueryConfig parameterizes an exposure query (Q1/Q2).
	QueryConfig = query.Config
	// Query is a running exposure query.
	Query = query.Engine
	// SlidingWindow is a CQL "[Range N]" window per partition.
	SlidingWindow = stream.SlidingWindow
	// Aggregate computes windowed per-partition aggregates.
	Aggregate = stream.Aggregate
)

// NewSlidingWindow returns an empty partitioned time window.
func NewSlidingWindow(rng Epoch, key func(Tuple) int64) *SlidingWindow {
	return stream.NewSlidingWindow(rng, key)
}

// Distributed runtime types.
type (
	// Cluster is a concurrent multi-site deployment of engines: one actor
	// per site, asynchronous state migration, bit-deterministic replay.
	Cluster = dist.Cluster
	// Strategy selects the state-migration method.
	Strategy = dist.Strategy
	// ONS is the sharded, mutex-free object naming service.
	ONS = dist.ONS
	// ClusterQuery attaches per-site continuous queries whose pattern state
	// migrates with departing objects.
	ClusterQuery = dist.ClusterQuery
	// ClusterStats reports per-site runtime counters of a Replay.
	ClusterStats = dist.ClusterStats
	// SiteStats is one site's share of ClusterStats.
	SiteStats = dist.SiteStats
	// LinkCost is the migration traffic of one directed inter-site link.
	LinkCost = dist.LinkCost
)

// Migration strategies.
const (
	MigrateNone     = dist.MigrateNone
	MigrateWeights  = dist.MigrateWeights
	MigrateReadings = dist.MigrateReadings
	MigrateFull     = dist.MigrateFull
)

// Online-runtime types (internal/serve): the rfidtrackd daemon as a
// library.
type (
	// Server is the online streaming runtime around a Cluster: bounded-queue
	// ingestion, Δ-interval scheduling, continuous-query alert feeds, and an
	// HTTP front end. Results are bit-identical to ReplaySequential on the
	// same stream.
	Server = serve.Server
	// ServeConfig tunes a Server (Δ interval, horizon, queue depth, workers,
	// attached queries).
	ServeConfig = serve.Config
	// ServeEvent is one ingestion-stream element: a reading or a departure.
	ServeEvent = serve.Event
	// ServeStats is the server's ingestion/cluster/scheduler counters.
	ServeStats = serve.Stats
	// Alert is one continuous-query match published to subscribers.
	Alert = serve.Alert
	// AlertSubscription delivers alerts in publication order on its C channel.
	AlertSubscription = serve.Subscription
	// ServeClient is a minimal HTTP client for a running rfidtrackd.
	ServeClient = serve.Client
	// Departure reports an object leaving one site for another; feeding it
	// to a Server (or Feed) triggers state migration.
	Departure = dist.Departure
	// Feed is the incremental ingestion interface of a Cluster, the layer
	// Server builds on.
	Feed = dist.Feed
	// FeedReading is one site-local reading in flight through the feed: the
	// element type of Server.IngestBatch batches and of the sharded ingest
	// buckets.
	FeedReading = dist.Reading
	// WALManifest is a durable data directory's commit point (generation,
	// active snapshot, boundary), returned by Server.SnapshotNow.
	WALManifest = wal.Manifest
	// WALStats is the durable-state accounting exposed in ServeStats.WAL.
	WALStats = wal.Stats
)

// NewServer starts an online server over a cluster; see serve.New.
func NewServer(c *Cluster, cfg ServeConfig) (*Server, error) { return serve.New(c, cfg) }

// ColdChainQuery builds the canonical cold-chain demo query (the paper's
// Q1 over a fixed manufacturer database) — the same construction
// rfidtrackd serves and the determinism tests pin.
func ColdChainQuery(w *World, interval Epoch) *ClusterQuery {
	return dist.ColdChainQuery(w, interval)
}

// WorldEvents flattens a simulated world into the time-ordered event
// stream a Server ingests (readings plus the given departures).
func WorldEvents(w *World, deps []Departure) []ServeEvent { return serve.WorldEvents(w, deps) }

// ReadingEvent builds one ingestion reading event.
func ReadingEvent(site int, t Epoch, tag TagID, mask Mask) ServeEvent {
	return serve.Reading(site, t, tag, mask)
}

// DepartEvent builds one ingestion departure event.
func DepartEvent(d Departure) ServeEvent { return serve.Depart(d) }

// Metric types.
type (
	// ErrorCounts accumulates error-rate observations.
	ErrorCounts = metrics.Counts
	// PRF holds precision/recall/F-measure.
	PRF = metrics.PRF
)

// SMURFEngine is the SMURF* baseline of the paper's Appendix C.3.
type SMURFEngine = smurf.Engine

// NewEngine returns an RFINFER engine for a site with the given observation
// model.
func NewEngine(lik *Likelihood, cfg InferConfig) *Engine { return rfinfer.New(lik, cfg) }

// DefaultInferConfig returns the paper's inference defaults.
func DefaultInferConfig() InferConfig { return rfinfer.DefaultConfig() }

// NewReadRates builds a read-rate table from pi[r][a].
func NewReadRates(pi [][]float64) (*ReadRates, error) { return model.NewReadRates(pi) }

// NewSchedule builds a reader interrogation schedule.
func NewSchedule(cycle, readers int, scanning func(r, p int) bool) (*Schedule, error) {
	return model.NewSchedule(cycle, readers, scanning)
}

// AlwaysOn is the schedule where every reader scans every epoch.
func AlwaysOn(readers int) *Schedule { return model.AlwaysOn(readers) }

// NewLikelihood combines rates and a schedule into an observation model.
func NewLikelihood(rates *ReadRates, sched *Schedule) *Likelihood {
	return model.NewLikelihood(rates, sched)
}

// Simulate runs the supply-chain workload generator.
func Simulate(cfg SimConfig) (*World, error) { return sim.Generate(cfg) }

// DefaultSimConfig returns the paper's workload parameters at laptop scale.
func DefaultSimConfig() SimConfig { return sim.DefaultConfig() }

// LabTraces lists the eight lab traces of the paper's Appendix C.2.
func LabTraces() []LabTraceParams { return sim.LabTraces() }

// LabTrace generates one lab trace.
func LabTrace(p LabTraceParams, seed int64) (*Trace, *World, error) {
	return sim.LabTrace(p, seed)
}

// NewCluster builds a distributed deployment over a simulated world.
func NewCluster(w *World, strategy Strategy, cfg InferConfig) *Cluster {
	return dist.NewCluster(w, strategy, cfg)
}

// NewQuery builds an exposure query pipeline (see Q1Config / Q2Config).
func NewQuery(cfg QueryConfig, freezer func(TagID) bool) *Query { return query.New(cfg, freezer) }

// PathTracker answers the paper's tracking queries: compressed per-object
// location histories plus itinerary deviation alerts.
type PathTracker = query.PathTracker

// PathStep is one stop of a tracked object's history.
type PathStep = query.PathStep

// Deviation reports an object leaving its intended path.
type Deviation = query.Deviation

// NewPathTracker returns an empty tracking-query operator.
func NewPathTracker() *PathTracker { return query.NewPathTracker() }

// Q1Config returns the paper's hybrid query Q1 (location + containment).
func Q1Config(duration, snapshotInterval Epoch) QueryConfig {
	return query.Q1Config(duration, snapshotInterval)
}

// Q2Config returns the paper's query Q2 (location only).
func Q2Config(duration, snapshotInterval Epoch) QueryConfig {
	return query.Q2Config(duration, snapshotInterval)
}

// NewSMURF returns the SMURF* baseline engine.
func NewSMURF(lik *Likelihood, cfg smurf.Config) *SMURFEngine { return smurf.New(lik, cfg) }

// DefaultSMURFConfig returns the baseline's defaults.
func DefaultSMURFConfig() smurf.Config { return smurf.DefaultConfig() }

// ChooseThreshold samples the change-point threshold δ from the generative
// model (Section 3.3).
func ChooseThreshold(lik *Likelihood, cfg changepoint.ThresholdConfig) float64 {
	return changepoint.ChooseThreshold(lik, cfg)
}

// FMeasure combines detection counts into precision/recall/F.
func FMeasure(tp, fp, fn int) PRF { return metrics.FMeasure(tp, fp, fn) }

module rfidtrack

go 1.24

package rfidtrack_test

// The kill -9 recovery smoke (`make recover-smoke`): run the real
// rfidtrackd binary with a data directory in strict-fsync mode, stream at
// it like a retrying edge relay, SIGKILL it mid-stream, restart it over
// the same directory, finish the stream, and require the drained Result
// to be reflect.DeepEqual to the uninterrupted sequential reference. This
// is the process-level twin of serve.TestRecoverMatchesUninterrupted: no
// graceful path runs — the first process dies with buffered intervals,
// un-snapshotted checkpoints and an HTTP request possibly in flight.

import (
	"bufio"
	"context"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"rfidtrack/internal/dist"
	"rfidtrack/internal/model"
	"rfidtrack/internal/rfinfer"
	"rfidtrack/internal/serve"
	"rfidtrack/internal/sim"
)

// smokeWorldFlags is the deployment both the daemon and the in-test
// reference build: small enough to finish in seconds, rich enough to
// carry migrations and alerts.
var smokeWorldFlags = []string{"-sites", "2", "-path", "2", "-epochs", "1200", "-items", "3", "-interval", "300", "-seed", "1"}

func smokeWorld(t *testing.T) *sim.World {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Warehouses = 2
	cfg.PathLength = 2
	cfg.Epochs = 1200
	cfg.ItemsPerCase = 3
	cfg.Seed = 1
	// Matching rfidtrackd's own defaults for the remaining flags.
	cfg.Shelves = 8
	cfg.RR = 0.8
	cfg.AnomalyEvery = 120
	w, err := sim.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// startDaemon launches rfidtrackd on an ephemeral port and waits for its
// listen line.
func startDaemon(t *testing.T, bin, dataDir string) (*exec.Cmd, string) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-data-dir", dataDir, "-strict", "-snapshot-every", "1"}, smokeWorldFlags...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	lines := bufio.NewScanner(stdout)
	addr := make(chan string, 1)
	go func() {
		for lines.Scan() {
			line := lines.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				fields := strings.Fields(line[i+len("listening on "):])
				if len(fields) > 0 {
					addr <- fields[0]
				}
			}
		}
		// Drain the rest so the daemon never blocks on a full pipe.
		io.Copy(io.Discard, stdout)
	}()
	select {
	case a := <-addr:
		return cmd, "http://" + a
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("daemon never printed its listen address")
		return nil, ""
	}
}

// ingestRetry posts one batch, retrying through daemon downtime like
// rfidsim -retry; the daemon's idempotent ingest makes re-sends safe.
func ingestRetry(t *testing.T, client *serve.Client, events []serve.Event) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := client.Ingest(events); err == nil {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("ingest never succeeded: %v", err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestRecoverSmoke is the end-to-end kill -9 drill.
func TestRecoverSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills the daemon")
	}
	goTool := filepath.Join(runtime.GOROOT(), "bin", "go")
	if _, err := os.Stat(goTool); err != nil {
		goTool = "go"
	}
	moduleRoot, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "rfidtrackd")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	build := exec.CommandContext(ctx, goTool, "build", "-o", bin, "./cmd/rfidtrackd")
	build.Dir = moduleRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Uninterrupted reference, with the same query the daemon attaches.
	w := smokeWorld(t)
	const interval = model.Epoch(300)
	ref := dist.NewCluster(w, dist.MigrateWeights, rfinfer.DefaultConfig())
	ref.Query = dist.ColdChainQuery(w, interval)
	want, err := ref.ReplaySequential(interval)
	if err != nil {
		t.Fatal(err)
	}
	wantAlerts := 0
	for s := range w.Sites {
		wantAlerts += len(ref.SiteQuery(s).Matches())
	}
	events := serve.WorldEvents(w, ref.Departures())

	dataDir := t.TempDir()
	daemon, baseURL := startDaemon(t, bin, dataDir)
	client := &serve.Client{BaseURL: baseURL}

	// Stream the first half, then SIGKILL the daemon mid-interval — no
	// drain, no graceful anything. Strict fsync means every acknowledged
	// batch is durable; the unacknowledged one is re-sent after restart.
	const batch = 256
	cut := 0
	for cut < len(events) && events[cut].Time() < 450 {
		cut++
	}
	sent := 0
	for sent < cut {
		end := min(sent+batch, cut)
		ingestRetry(t, client, events[sent:end])
		sent = end
	}
	if err := daemon.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	daemon.Wait()

	// Restart over the same data directory; recovery replays the
	// snapshot + WAL tail. Re-send the last acknowledged batch too
	// (covering the ack-lost window), then the rest of the stream.
	daemon2, baseURL := startDaemon(t, bin, dataDir)
	defer func() {
		daemon2.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { daemon2.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			daemon2.Process.Kill()
		}
	}()
	client = &serve.Client{BaseURL: baseURL}
	resend := max(sent-batch, 0)
	for i := resend; i < len(events); i += batch {
		end := min(i+batch, len(events))
		ingestRetry(t, client, events[i:end])
	}
	if _, err := client.Drain(0); err != nil {
		t.Fatal(err)
	}

	got, err := client.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("recovered daemon's Result diverged from uninterrupted reference\n got: %+v\nwant: %+v", got, want)
	}
	alerts, err := client.Alerts(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != wantAlerts {
		t.Errorf("recovered daemon raised %d alerts, reference raised %d", len(alerts), wantAlerts)
	}
	if wantAlerts == 0 {
		t.Error("reference raised no alerts; the smoke scenario is too easy")
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.WAL == nil || st.WAL.Snapshots == 0 {
		t.Errorf("daemon reported no durable snapshots: %+v", st.WAL)
	}
}
